//! The chaos suite: every catalog scenario, run across a seed matrix,
//! with the full invariant suite checked after each run plus
//! scenario-specific accounting assertions.
//!
//! The seed matrix comes from `OMG_SIM_SEEDS` (comma-separated u64s) so a
//! CI failure's reproducer — `OMG_SIM_SEEDS=<seed> cargo test -p omg-sim`
//! — replays the identical event trace locally.

use std::time::Duration;

use omg_serve::ServeError;
use omg_sim::{catalog, Scenario, SimReport};

/// The seed matrix: `OMG_SIM_SEEDS` when set, else a fixed default trio.
/// A malformed matrix fails with the bad token and the expected format
/// (see [`omg_sim::parse_seed_matrix`]), not a bare parse panic.
fn seeds() -> Vec<u64> {
    match std::env::var("OMG_SIM_SEEDS") {
        Ok(raw) => omg_sim::parse_seed_matrix(&raw).unwrap_or_else(|e| panic!("{e}")),
        Err(_) => vec![7, 42, 1337],
    }
}

/// Runs `scenario` across the seed matrix, asserting the invariant suite
/// after each run, and hands each clean report to `check` for
/// scenario-specific assertions.
fn run_matrix(scenario: &Scenario, check: impl Fn(&SimReport)) {
    for seed in seeds() {
        let report = scenario.run(seed);
        report.assert_clean();
        check(&report);
    }
}

fn stats(report: &SimReport) -> &omg_serve::ServeStats {
    &report.drained.as_ref().expect("drain terminated").stats
}

#[test]
fn same_seed_replays_bit_identically() {
    // The tentpole guarantee: scenario + seed fully determine the event
    // trace, so every CI failure is a one-line local reproducer.
    let seed = seeds()[0];
    for scenario in catalog::all() {
        let a = scenario.run(seed);
        let b = scenario.run(seed);
        assert_eq!(
            a.trace, b.trace,
            "scenario {:?} diverged between identical runs (seed {seed})",
            scenario.name
        );
    }
}

#[test]
fn worker_panic_resolves_the_victim_and_serves_the_rest() {
    run_matrix(&catalog::worker_panic(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 5);
        assert_eq!(s.completed, 4);
        assert_eq!(s.discarded, 1);
        assert!(report
            .trace
            .contains(&"outcome seq=0: WorkerPanicked".to_string()));
        let drained = report.drained.as_ref().unwrap();
        assert_eq!(drained.devices.len(), 1);
        assert_eq!(drained.worker_errors.len(), 1);
        assert!(matches!(
            drained.worker_errors[0],
            ServeError::WorkerPanicked
        ));
    });
}

#[test]
fn last_worker_panic_strands_no_waiter() {
    run_matrix(&catalog::stranded_queue_panic(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 4);
        assert_eq!(s.completed, 0);
        // The held job *and* every stranded one land in discarded; the
        // verdicts are delivered during the panicking worker's unwind.
        assert_eq!(s.discarded, 4);
        for seq in 0..4 {
            assert!(
                report
                    .trace
                    .contains(&format!("outcome seq={seq}: WorkerPanicked")),
                "seq {seq} missing its verdict in {:#?}",
                report.trace
            );
        }
    });
}

#[test]
fn device_crash_fails_one_query_and_fleet_keeps_serving() {
    run_matrix(&catalog::device_crash(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 6);
        assert_eq!(s.completed, 5);
        assert_eq!(s.failed, 1);
        assert!(report
            .trace
            .contains(&"outcome seq=1: Query(DeviceCrashed)".to_string()));
        let drained = report.drained.as_ref().unwrap();
        assert_eq!(drained.devices.len(), 1, "crashed device must not return");
        assert_eq!(drained.worker_errors.len(), 1);
    });
}

#[test]
fn drain_under_load_serves_every_admitted_job() {
    run_matrix(&catalog::drain_under_load(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 8);
        assert_eq!(s.completed, 8);
        assert!(report.drained.as_ref().unwrap().is_healthy());
    });
}

#[test]
fn saturation_burst_bounces_exactly_the_overflow() {
    run_matrix(&catalog::saturation_burst(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 9);
        assert_eq!(s.completed, 6);
        assert_eq!(s.rejected, 3, "parked workers make the bounce count exact");
        for seq in 6..9 {
            assert!(report.trace.contains(&format!(
                "outcome seq={seq}: rejected at admission (Overloaded)"
            )));
        }
    });
}

#[test]
fn slow_device_stall_is_accounted_and_harmless() {
    run_matrix(&catalog::slow_device(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 3);
        let drained = report.drained.as_ref().unwrap();
        assert!(drained.is_healthy());
        // The injected stall shows up on the device clock as stalled
        // virtual time — attributed to neither modelled nor measured work.
        let stalled: Duration = drained.devices.iter().map(|d| d.clock().stalled()).sum();
        assert_eq!(stalled, catalog::SLOW_DEVICE_STALL);
    });
}

#[test]
fn zero_budget_queries_are_shed_not_served() {
    run_matrix(&catalog::expired_deadline_shed(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 5);
        assert_eq!(s.completed, 1);
        assert_eq!(s.shed, 4);
        for seq in 1..5 {
            assert!(report
                .trace
                .contains(&format!("outcome seq={seq}: Expired")));
        }
    });
}

#[test]
fn tampered_runtime_image_is_rejected_then_fleet_serves() {
    run_matrix(&catalog::tampered_runtime_image(), |report| {
        assert!(report
            .trace
            .contains(&"provision: tampered runtime image rejected by attestation".to_string()));
        assert_eq!(stats(report).completed, 3);
    });
}

#[test]
fn tampered_sealed_model_is_rejected_then_fleet_serves() {
    run_matrix(&catalog::tampered_sealed_model(), |report| {
        assert!(report.trace.contains(
            &"provision: tampered sealed model rejected by authenticated decryption".to_string()
        ));
        assert_eq!(stats(report).completed, 3);
    });
}

#[test]
fn recovery_kill_loop_restores_full_capacity() {
    run_matrix(&catalog::kill_loop(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 10);
        assert_eq!(s.completed, 7);
        assert_eq!(s.discarded, 3, "each kill discards exactly its victim");
        assert_eq!(s.restarts, 3, "every death restarted");
        assert_eq!(s.quarantined, 0);
        for seq in [0, 3, 6] {
            assert!(report
                .trace
                .contains(&format!("outcome seq={seq}: WorkerPanicked")));
        }
        assert!(report.trace.contains(
            &"recovery: restarts=3 quarantined=0 retried=0 hung=0 health=Healthy".to_string()
        ));
        let drained = report.drained.as_ref().unwrap();
        // Full capacity back, and no terminal worker errors: the engine's
        // invariant 5 already proved every completed answer — including
        // those served by re-provisioned replacements — matches the
        // reference device bit-for-bit.
        assert_eq!(drained.devices.len(), 2);
        assert!(drained.worker_errors.is_empty());
    });
}

#[test]
fn recovery_survives_every_worker_dying_at_once() {
    run_matrix(&catalog::all_workers_die_then_recover(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 6);
        assert_eq!(s.completed, 4, "jobs admitted at zero live workers served");
        assert_eq!(s.discarded, 2);
        assert_eq!(s.restarts, 2);
        assert!(report.trace.contains(
            &"recovery: restarts=2 quarantined=0 retried=0 hung=0 health=Healthy".to_string()
        ));
        assert_eq!(report.drained.as_ref().unwrap().devices.len(), 2);
    });
}

#[test]
fn recovery_crash_loop_ends_quarantined_not_storming() {
    run_matrix(&catalog::crash_loop_quarantine(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 6);
        assert_eq!(s.completed, 0);
        assert_eq!(s.discarded, 6);
        assert_eq!(s.restarts, 2, "strike three quarantines instead");
        assert_eq!(s.quarantined, 1);
        assert!(report.trace.contains(
            &"recovery: restarts=2 quarantined=1 retried=0 hung=0 health=Quarantined".to_string()
        ));
        let drained = report.drained.as_ref().unwrap();
        assert!(!drained.is_healthy());
        assert_eq!(drained.devices.len(), 0);
        assert!(matches!(
            drained.worker_errors[0],
            ServeError::WorkerPanicked
        ));
    });
}

#[test]
fn recovery_restored_capacity_absorbs_the_next_burst() {
    run_matrix(&catalog::capacity_restored_under_load(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 16);
        assert_eq!(s.completed, 15);
        assert_eq!(s.discarded, 1);
        assert_eq!(s.restarts, 1);
        assert!(report.trace.contains(
            &"recovery: restarts=1 quarantined=0 retried=0 hung=0 health=Healthy".to_string()
        ));
        assert_eq!(report.drained.as_ref().unwrap().devices.len(), 3);
    });
}

#[test]
fn recovery_hang_is_detected_and_preempted() {
    run_matrix(&catalog::hang_preempted(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 5);
        assert_eq!(s.completed, 4);
        assert_eq!(s.discarded, 1, "the preempted query is discarded");
        assert_eq!(s.restarts, 1, "the wedged slot was re-provisioned");
        assert_eq!(s.hung, 1);
        assert_eq!(s.quarantined, 0);
        assert!(
            report.trace.contains(&"outcome seq=0: Hung".to_string()),
            "the victim's waiter must get the retryable Hung verdict: {:#?}",
            report.trace
        );
        assert!(report.trace.contains(
            &"recovery: restarts=1 quarantined=0 retried=0 hung=1 health=Healthy".to_string()
        ));
        let drained = report.drained.as_ref().unwrap();
        assert_eq!(drained.devices.len(), 2, "full capacity back");
        assert!(drained.worker_errors.is_empty());
    });
}

#[test]
fn recovery_hang_zombie_publishes_nothing() {
    run_matrix(&catalog::hang_zombie_publishes_nothing(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 3);
        assert_eq!(s.completed, 2);
        assert_eq!(s.discarded, 1);
        assert_eq!(s.hung, 1);
        assert_eq!(s.restarts, 1);
        // The scripted wake-hung + await-zombies proved the woken zombie's
        // completion lost the fill race: one discard, identity untouched.
        assert_eq!(s.zombie_discards, 1);
        assert!(report.trace.contains(&"outcome seq=0: Hung".to_string()));
        assert_eq!(report.drained.as_ref().unwrap().devices.len(), 1);
    });
}

#[test]
fn recovery_all_workers_hang_then_recover() {
    run_matrix(&catalog::all_workers_hang(), |report| {
        let s = stats(report);
        assert_eq!(s.submitted, 6);
        assert_eq!(s.completed, 4, "jobs admitted at zero live workers served");
        assert_eq!(s.discarded, 2);
        assert_eq!(s.restarts, 2);
        assert_eq!(s.hung, 2);
        assert!(report.trace.contains(
            &"recovery: restarts=2 quarantined=0 retried=0 hung=2 health=Healthy".to_string()
        ));
        for seq in [0, 1] {
            assert!(report.trace.contains(&format!("outcome seq={seq}: Hung")));
        }
        assert_eq!(report.drained.as_ref().unwrap().devices.len(), 2);
    });
}

#[test]
fn accounting_identity_holds_in_every_catalog_run() {
    // Redundant with the engine's own invariant (every run_matrix call
    // above checks it via assert_clean), but stated once as the suite's
    // headline, on a seed outside the default matrix.
    let seed = seeds().iter().copied().max().unwrap_or(0) ^ 0x0515;
    for scenario in catalog::all() {
        let report = scenario.run(seed);
        report.assert_clean();
        let s = stats(&report);
        assert_eq!(
            s.completed + s.rejected + s.failed + s.shed + s.discarded,
            s.submitted,
            "identity broken in {:?} (seed {seed})",
            scenario.name
        );
    }
}
