//! The scenario catalog: the fault modes the fleet must survive, written
//! as data. Each constructor returns a [`Scenario`] whose outcome is
//! fully determined by its seed — the comments state the exact expected
//! accounting so a drifting runtime shows up as a trace diff, not a
//! shrug.
//!
//! The catalog leans on one determinism trick throughout: a paused fault
//! gate ([`Scenario::pause`]) parks each worker right after its next
//! dequeue, *holding exactly one job*. That pins queue depth and
//! worker/job assignment at script time, so saturation counts and fault
//! targeting don't depend on thread scheduling.

use std::time::Duration;

use omg_serve::fault::QueryFault;
use omg_serve::{HangPolicy, RestartPolicy};

use crate::{Provisioning, Scenario, SimModel};

/// The restart policy the recovery scenarios run under: millisecond
/// backoffs (CI-friendly), and `stable_after: ZERO` so every death counts
/// as an isolated incident — spaced kills never accumulate crash-loop
/// strikes.
fn recovery_policy() -> RestartPolicy {
    RestartPolicy {
        backoff_initial: Duration::from_millis(1),
        backoff_max: Duration::from_millis(8),
        max_restarts: 16,
        crash_loop_threshold: 3,
        stable_after: Duration::ZERO,
    }
}

/// The hang policy the liveness scenarios run under: a lease TTL + grace
/// small enough for CI (a wedge is declared within ~80 ms plus one scan
/// tick) and a hang budget high enough that no scripted scenario
/// quarantines by accident.
fn liveness_policy() -> HangPolicy {
    HangPolicy {
        lease_ttl: Duration::from_millis(40),
        grace: Duration::from_millis(40),
        max_hangs: 8,
        scan_interval: Duration::from_millis(5),
    }
}

/// A worker panics mid-query in a two-worker fleet. The victim's waiter
/// must resolve with `WorkerPanicked` (the liveness fix under test: before
/// it, this ticket hung forever) and the survivor serves everything else.
///
/// Expected accounting: submitted=5, completed=4, discarded=1.
pub fn worker_panic() -> Scenario {
    Scenario::new("worker-panic", 2)
        .queue_capacity(8)
        .pause()
        .submit(2) // primers: one held per parked worker
        .await_parked(2)
        .fault(0, QueryFault::WorkerPanic)
        .submit(3)
        .resume()
}

/// The *last* worker panics with work still queued. Failover must close
/// the queue and deliver a verdict to every stranded waiter — none may
/// hang, and every stranded job lands in `discarded`.
///
/// Expected accounting: submitted=4, completed=0, discarded=4.
pub fn stranded_queue_panic() -> Scenario {
    Scenario::new("stranded-queue-panic", 1)
        .queue_capacity(8)
        .pause()
        .submit(1) // held by the only worker
        .await_parked(1)
        .submit(3) // stranded behind the doomed primer
        .fault(0, QueryFault::WorkerPanic)
        .resume()
}

/// A device crashes mid-query (enclave torn down, memory scrubbed). The
/// victim query fails cleanly with `DeviceCrashed`; the fleet keeps
/// serving on the surviving device and drain reports exactly one lost
/// worker.
///
/// Expected accounting: submitted=6, completed=5, failed=1;
/// one surviving device, one worker error.
pub fn device_crash() -> Scenario {
    Scenario::new("device-crash", 2)
        .queue_capacity(8)
        .pause()
        .submit(2)
        .await_parked(2)
        .fault(1, QueryFault::DeviceCrash)
        .submit(4)
        .resume()
}

/// Drain begins while the queue is still loaded. Every admitted job must
/// be served before drain returns — drain is completion, not abandonment.
///
/// Expected accounting: submitted=8, completed=8.
pub fn drain_under_load() -> Scenario {
    Scenario::new("drain-under-load", 2)
        .queue_capacity(8)
        .pause()
        .submit(2)
        .await_parked(2)
        .submit(6) // queued when the implicit drain starts
        .resume()
}

/// Queue saturation with the workers parked: the queue fills to exactly
/// its capacity, then every further submission bounces `Overloaded` —
/// deterministically, because no worker is draining.
///
/// Expected accounting: submitted=9, completed=6, rejected=3.
pub fn saturation_burst() -> Scenario {
    Scenario::new("saturation-burst", 2)
        .queue_capacity(4)
        .pause()
        .submit(2) // held by parked workers, not in the queue
        .await_parked(2)
        .submit(4) // fills the queue exactly
        .submit(3) // every one of these must bounce
        .resume()
}

/// One query on a single-device fleet stalls for two virtual seconds
/// (`SimClock::stall`, wall-clock capped by the runtime). The stall must
/// not corrupt results or accounting, and the device's clock records the
/// stall as neither modelled nor measured time.
///
/// Expected accounting: submitted=3, completed=3; the surviving device
/// reports 2 s of stalled virtual time.
pub fn slow_device() -> Scenario {
    Scenario::new("slow-device", 1)
        .queue_capacity(8)
        .fault(1, QueryFault::Delay(SLOW_DEVICE_STALL))
        .submit(3)
}

/// The stall injected by [`slow_device`], exported so tests can assert
/// the drained device's clock accounted for exactly this much.
pub const SLOW_DEVICE_STALL: Duration = Duration::from_secs(2);

/// Zero-budget queries behind a parked worker: by the time the worker
/// dequeues them their deadline has passed, so every one is shed at
/// dequeue — no device time spent on doomed work.
///
/// Expected accounting: submitted=5, completed=1, shed=4.
pub fn expired_deadline_shed() -> Scenario {
    Scenario::new("expired-deadline-shed", 1)
        .queue_capacity(8)
        .pause()
        .submit(1) // primer, held; serves fine after resume
        .await_parked(1)
        .submit_with_budget(4, Duration::ZERO)
        .resume()
}

/// A worker panics mid-query while serving the conv-heavy model under a
/// GEMM thread budget of 4: every query runs scoped row-panel threads
/// *inside* the panicking worker. `std::thread::scope` joins the panel
/// threads before the panic propagates, so the teardown must leave no
/// hung waiters, the survivor keeps serving threaded queries, and the
/// surviving device's arena still scrubs on drain.
///
/// Expected accounting: submitted=5, completed=4, discarded=1 (the
/// worker-panic shape, now with multithreaded kernels underneath).
pub fn threaded_gemm_panic() -> Scenario {
    Scenario::new("threaded-gemm-panic", 2)
        .queue_capacity(8)
        .model(SimModel::ConvHeavy)
        .kernel_threads(4)
        .pause()
        .submit(2) // primers: one held per parked worker
        .await_parked(2)
        .fault(0, QueryFault::WorkerPanic)
        .submit(3)
        .resume()
}

/// A tampered enclave runtime image is offered during provisioning: the
/// vendor's attestation must reject it and leave the device fresh. The
/// fleet then serves genuinely so the full invariant suite still runs.
pub fn tampered_runtime_image() -> Scenario {
    Scenario::new("tampered-runtime-image", 1)
        .queue_capacity(8)
        .provisioning(Provisioning::TamperedRuntimeImage)
        .submit(3)
}

/// The sealed model blob is flipped in untrusted storage before
/// initialization: authenticated decryption must reject it (reported as
/// rollback/tamper detection), and a genuine fleet then serves.
pub fn tampered_sealed_model() -> Scenario {
    Scenario::new("tampered-sealed-model", 1)
        .queue_capacity(8)
        .provisioning(Provisioning::TamperedSealedModel)
        .submit(3)
}

/// A supervised two-worker fleet is kill-looped: three spaced worker
/// panics across a ten-query stream. Each victim's waiter resolves
/// `WorkerPanicked`, the supervisor re-provisions a replacement device
/// through the shared model cache after every kill, and the fleet settles
/// back at full capacity — replacement answers bit-identical to the
/// reference device (invariant 5 covers every completed query).
///
/// Expected accounting: submitted=10, completed=7, discarded=3;
/// restarts=3, quarantined=0, health=Healthy, 2 devices back.
pub fn kill_loop() -> Scenario {
    Scenario::new("kill-loop", 2)
        .queue_capacity(16)
        .restart(recovery_policy())
        .fault(0, QueryFault::WorkerPanic)
        .fault(3, QueryFault::WorkerPanic)
        .fault(6, QueryFault::WorkerPanic)
        .submit(10)
        .await_settled()
}

/// Every worker in the fleet dies at once (both parked workers hold a
/// faulted job when the gate opens). A supervised fleet must not close
/// the queue at zero live workers — the submissions that arrive while
/// both slots are down wait for the replacements and complete.
///
/// Expected accounting: submitted=6, completed=4, discarded=2;
/// restarts=2, health=Healthy, 2 devices back.
pub fn all_workers_die_then_recover() -> Scenario {
    Scenario::new("all-workers-die-then-recover", 2)
        .queue_capacity(8)
        .restart(recovery_policy())
        .pause()
        .fault(0, QueryFault::WorkerPanic)
        .fault(1, QueryFault::WorkerPanic)
        .submit(2) // one doomed primer held per parked worker
        .await_parked(2)
        .resume()
        .submit(4) // admitted while zero workers are live
        .await_settled()
}

/// A crash-looping device: the sole worker dies on three consecutive
/// queries under a policy that treats every death as rapid
/// (`stable_after` far beyond the run). Strike three quarantines the slot
/// instead of restarting it — no restart storm — and the queue closes
/// terminally, discarding the stranded jobs.
///
/// Expected accounting: submitted=6, completed=0, discarded=6;
/// restarts=2, quarantined=1, health=Quarantined, 0 devices back.
pub fn crash_loop_quarantine() -> Scenario {
    Scenario::new("crash-loop-quarantine", 1)
        .queue_capacity(16)
        .restart(RestartPolicy {
            backoff_initial: Duration::from_millis(1),
            backoff_max: Duration::from_millis(2),
            max_restarts: 16,
            crash_loop_threshold: 3,
            // Longer than any run: every death reads as rapid, so the
            // three kills are strikes 1, 2, 3 of one crash loop.
            stable_after: Duration::from_secs(3600),
        })
        .pause()
        .fault(0, QueryFault::WorkerPanic)
        .fault(1, QueryFault::WorkerPanic)
        .fault(2, QueryFault::WorkerPanic)
        .submit(6) // all admitted before the first kill: gate is shut
        .await_parked(1)
        .resume()
        .await_settled()
}

/// Capacity restoration under sustained load: a three-worker fleet loses
/// one worker inside the first burst, settles (supervisor restores the
/// third device), then serves a second full burst — which the restored
/// capacity must absorb completely.
///
/// Expected accounting: submitted=16, completed=15, discarded=1;
/// restarts=1, health=Healthy, 3 devices back.
pub fn capacity_restored_under_load() -> Scenario {
    Scenario::new("capacity-restored-under-load", 3)
        .queue_capacity(24)
        .restart(recovery_policy())
        .fault(2, QueryFault::WorkerPanic)
        .submit(8)
        .await_settled()
        .submit(8)
        .await_settled()
}

/// A worker wedges mid-query (permanent stall) in a supervised two-worker
/// fleet with the liveness watchdog on. The watchdog must preempt the
/// wedged slot within `lease_ttl + grace` (+ one scan tick): the victim's
/// waiter resolves with retryable `Hung`, the survivor keeps serving, and
/// the slot is re-provisioned back to `Healthy`. The zombie stays wedged
/// until the engine's pre-drain release and publishes nothing.
///
/// Expected accounting: submitted=5, completed=4, discarded=1;
/// restarts=1, hung=1, health=Healthy, 2 devices back.
pub fn hang_preempted() -> Scenario {
    Scenario::new("hang-preempted", 2)
        .queue_capacity(8)
        .restart(recovery_policy())
        .hang(liveness_policy())
        .pause()
        .fault(0, QueryFault::Hang)
        .submit(2) // primers: one held per parked worker, seq 0 doomed
        .await_parked(2)
        .resume()
        .submit(3)
        .await_settled()
}

/// The stall-then-wake case: the sole worker wedges, is preempted and
/// replaced, and *then* the zombie wakes. Its long-preempted completion
/// must lose the fill race and publish nothing — observable as exactly one
/// zombie discard, with the identity buckets untouched.
///
/// Expected accounting: submitted=3, completed=2, discarded=1;
/// restarts=1, hung=1, zombie_discards=1, health=Healthy.
pub fn hang_zombie_publishes_nothing() -> Scenario {
    Scenario::new("hang-zombie-discarded", 1)
        .queue_capacity(8)
        .restart(recovery_policy())
        .hang(liveness_policy())
        .fault(0, QueryFault::Hang)
        .submit(3)
        .await_settled()
        .wake_hung()
        .await_zombies(1)
}

/// Every worker wedges at once: both parked primers carry a hang fault, so
/// for a window the fleet has zero live workers *and* zero dead ones —
/// only leases going stale. The watchdog must preempt both slots and the
/// supervisor must restore full capacity; the submissions that arrived
/// while everything was wedged complete on the replacements.
///
/// Expected accounting: submitted=6, completed=4, discarded=2;
/// restarts=2, hung=2, health=Healthy, 2 devices back.
pub fn all_workers_hang() -> Scenario {
    Scenario::new("all-workers-hang", 2)
        .queue_capacity(8)
        .restart(recovery_policy())
        .hang(liveness_policy())
        .pause()
        .fault(0, QueryFault::Hang)
        .fault(1, QueryFault::Hang)
        .submit(2) // one doomed primer held per parked worker
        .await_parked(2)
        .resume()
        .submit(4) // admitted while every slot is wedged
        .await_settled()
}

/// Every catalog scenario, in a stable order (CI runs all of them across
/// the seed matrix).
pub fn all() -> Vec<Scenario> {
    vec![
        worker_panic(),
        stranded_queue_panic(),
        device_crash(),
        drain_under_load(),
        saturation_burst(),
        slow_device(),
        expired_deadline_shed(),
        threaded_gemm_panic(),
        tampered_runtime_image(),
        tampered_sealed_model(),
        kill_loop(),
        all_workers_die_then_recover(),
        crash_loop_quarantine(),
        capacity_restored_under_load(),
        hang_preempted(),
        hang_zombie_publishes_nothing(),
        all_workers_hang(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_distinct_and_named() {
        let scenarios = all();
        assert!(scenarios.len() >= 6, "catalog shrank below the floor");
        let mut names: Vec<_> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), scenarios.len(), "duplicate scenario names");
    }

    #[test]
    fn every_pause_is_resumed() {
        // A scenario that pauses but never resumes would hang its own
        // drain; catch that statically.
        for s in all() {
            let pauses = s
                .steps
                .iter()
                .filter(|x| matches!(x, crate::Step::Pause))
                .count();
            let resumes = s
                .steps
                .iter()
                .filter(|x| matches!(x, crate::Step::Resume))
                .count();
            assert_eq!(
                pauses, resumes,
                "scenario {:?} leaves the gate shut",
                s.name
            );
        }
    }

    #[test]
    fn every_hang_scenario_is_supervised() {
        // The runtime rejects a HangPolicy without a RestartPolicy (the
        // watchdog needs the supervisor to re-provision preempted slots);
        // catch a mis-built catalog entry statically.
        for s in all() {
            let hangs_scripted = s.steps.iter().any(
                |x| matches!(x, crate::Step::Fault { fault, .. } if *fault == QueryFault::Hang),
            );
            if hangs_scripted {
                assert!(
                    s.hang.is_some() && s.restart.is_some(),
                    "scenario {:?} scripts a hang without watchdog + supervision",
                    s.name
                );
            }
            if s.hang.is_some() {
                assert!(
                    s.restart.is_some(),
                    "scenario {:?} installs a HangPolicy without a RestartPolicy",
                    s.name
                );
            }
        }
    }
}
