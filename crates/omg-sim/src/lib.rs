//! `omg-sim`: a deterministic fleet chaos harness.
//!
//! The paper's security argument (§V: enclave-isolated inference that
//! stays safe under an adversarial normal world) is only as strong as the
//! fleet's behavior under faults. This crate drives a **real**
//! [`omg_serve::ServeHandle`] fleet — fully provisioned enclave devices,
//! real worker threads, the real admission queue — through *scenarios as
//! data*: each [`Scenario`] is a script of fault injections (worker panic
//! mid-query, device crash, scripted stalls, saturation bursts, drain
//! under load, tampered provisioning) executed by one engine,
//! [`Scenario::run`]. Adding a new fault mode is one declaration, not a
//! new test file.
//!
//! # Determinism
//!
//! Everything the scenario observes is derived from its seed: utterance
//! picks come from a seeded [`rand::rngs::StdRng`]; faults are keyed by
//! *submission sequence number* (admission order), not wall-clock time or
//! worker identity; the pause gate pins queue depths before bursts; and
//! the event trace records per-query *outcomes in submission order* (never
//! latencies or worker ids). Same scenario + same seed ⇒ byte-identical
//! [`SimReport::trace`], so every failure ships with a one-line
//! reproducer (see [`SimReport::reproducer`]).
//!
//! # Invariant suite
//!
//! After **every** run — whatever the scenario scripted — the engine
//! checks a fixed suite:
//!
//! 1. **No hung waiters**: every admitted `Pending` ticket resolves.
//! 2. **Drain terminates** (watchdog-bounded).
//! 3. **Accounting identity**: `completed + rejected + failed + shed +
//!    discarded == submitted`, exactly.
//! 4. **Per-worker counts** sum to `completed`, exactly — the per-slot
//!    counters live in shared state, so even a worker that panicked (or
//!    was restarted by the supervisor) leaves its completions behind.
//! 5. **Correct answers**: every successful response matches the ground
//!    truth computed on an isolated reference device — including answers
//!    from supervisor-re-provisioned replacement devices, which must be
//!    bit-identical to the reference.
//! 6. **Arenas scrubbed** on every surviving device.
//! 7. **No plaintext model bytes** in any device's untrusted storage
//!    (16-byte-window scan, as in the omg-serve stress suite).
//! 8. **Worker conservation**: surviving devices + worker errors == the
//!    fleet size.
//! 9. **Capacity convergence** (supervised scenarios only): when a
//!    [`RestartPolicy`] is installed and no slot ended quarantined, the
//!    fleet must converge back to its target capacity — every death
//!    restarted, no terminal worker errors, all devices back at drain.
//!
//! # Replaying a failure
//!
//! ```text
//! OMG_SIM_SEEDS=1337 cargo test -p omg-sim
//! ```
//!
//! [`SimReport::assert_clean`] panics with the scenario script and the
//! seed, so the line above reproduces the identical event trace.

#![warn(missing_docs)]

pub mod catalog;

use std::fmt;
use std::sync::mpsc;
use std::time::Duration;

use omg_core::session::provision_devices;
use omg_core::{OmgDevice, OmgError, User, Vendor};
use omg_nn::model::{Activation, Model, Op, Padding};
use omg_nn::quantize::QuantParams;
use omg_nn::tensor::DType;
use omg_obs::TraceSnapshot;
use omg_serve::fault::{FaultPlan, QueryFault};
use omg_serve::{
    DrainedServe, HangPolicy, Pending, RestartPolicy, ServeConfig, ServeError, ServeHandle,
    WorkerHealth,
};
use omg_speech::dataset::SyntheticSpeechCommands;
use omg_speech::frontend::FINGERPRINT_LEN;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::sync::Arc;

/// How long the engine will wait on any single ticket before declaring a
/// hung waiter — generous against CI jitter, tiny against a real hang.
const TICKET_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a drain may take before the watchdog declares it hung.
const DRAIN_TIMEOUT: Duration = Duration::from_secs(30);

/// How the fleet's devices are provisioned before serving starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provisioning {
    /// The genuine OMG runtime and an untampered sealed model.
    Genuine,
    /// The enclave runtime image is tampered before preparation: vendor
    /// attestation must reject it (the scenario then serves on a genuine
    /// fleet so the full invariant suite still runs).
    TamperedRuntimeImage,
    /// The sealed (encrypted) model blob is tampered in untrusted storage
    /// before initialization: authenticated decryption must reject it.
    TamperedSealedModel,
}

/// One scripted action in a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Step {
    /// Close the pause gate: each worker parks right after its next
    /// dequeue, holding exactly one job.
    Pause,
    /// Open the gate, releasing every parked worker.
    Resume,
    /// Block until `n` workers are parked at the gate (requires a
    /// preceding [`Step::Pause`] and enough submitted jobs to hold).
    AwaitParked(usize),
    /// Schedule a fault for the query with submission seq `query`.
    Fault {
        /// Submission sequence number (0-based admission order).
        query: u64,
        /// The fault to inject while that query is served.
        fault: QueryFault,
    },
    /// Submit `count` queries (utterances picked by the seeded RNG).
    Submit {
        /// Number of queries to submit.
        count: usize,
    },
    /// Submit `count` queries carrying a latency budget (deadline).
    SubmitWithBudget {
        /// Number of queries to submit.
        count: usize,
        /// Each query's latency budget ([`ServeError::Expired`] when the
        /// queue outlasts it).
        budget: Duration,
    },
    /// Block until the fleet has settled: every submission so far has
    /// reached a terminal outcome (the accounting identity balances), the
    /// queue is empty, and no worker slot is mid-recovery (`Down` /
    /// `Restarting` / `Hung`). This is what makes supervised scenarios
    /// deterministic: after it, restart counts and fleet health are fixed
    /// facts, not races against the supervisor thread.
    AwaitSettled,
    /// Release the fault plan's hang gate (one-way): every wedged zombie
    /// thread wakes, serves its long-preempted query, loses the fill race,
    /// and exits. Scenarios that scripted a [`QueryFault::Hang`] use this
    /// to prove the zombie publishes nothing.
    WakeHung,
    /// Block until at least `n` preempted zombie completions have been
    /// discarded ([`omg_serve::ServeStats::zombie_discards`] ≥ `n`) —
    /// the observable proof that a woken zombie lost the fill race.
    AwaitZombies(u64),
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Step::Pause => write!(f, "pause"),
            Step::Resume => write!(f, "resume"),
            Step::AwaitParked(n) => write!(f, "await-parked {n}"),
            Step::Fault { query, fault } => write!(f, "fault seq={query} {fault:?}"),
            Step::Submit { count } => write!(f, "submit {count}"),
            Step::SubmitWithBudget { count, budget } => {
                write!(f, "submit {count} budget={budget:?}")
            }
            Step::AwaitSettled => write!(f, "await-settled"),
            Step::WakeHung => write!(f, "wake-hung"),
            Step::AwaitZombies(n) => write!(f, "await-zombies {n}"),
        }
    }
}

/// Which model the scenario's fleet serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimModel {
    /// The frequency-band-selective FC model (cheap; one dot product per
    /// class).
    BandSelective,
    /// A conv-heavy model: the paper's `tiny_conv` geometry (8 filters of
    /// 10×8, stride 2, SAME) over the 49×43 fingerprint, feeding an FC to
    /// the 12 labels. Its im2col GEMM (550×8 over k=80) clears the
    /// row-panel threading thresholds, so with a kernel thread budget > 1
    /// every query runs scoped worker threads inside the serving worker.
    ConvHeavy,
}

/// A scripted chaos scenario: fleet shape + provisioning mode + a list of
/// timed fault-injection steps. Build with the fluent methods, execute
/// with [`Scenario::run`].
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (used in reports and reproducers).
    pub name: &'static str,
    /// Worker / device count.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// How devices are provisioned (see [`Provisioning`]).
    pub provisioning: Provisioning,
    /// The model the fleet serves (see [`SimModel`]).
    pub model: SimModel,
    /// GEMM kernel thread budget installed for the run (1 = inference
    /// stays single-threaded inside each serving worker).
    pub kernel_threads: usize,
    /// When set, the fleet runs supervised: dead workers are re-provisioned
    /// and restarted under this policy, and the engine checks the capacity
    /// convergence invariant after drain.
    pub restart: Option<RestartPolicy>,
    /// When set, the supervisor's liveness watchdog runs under this policy:
    /// wedged workers are preempted ([`ServeError::Hung`] to the waiter)
    /// and their slots re-provisioned. Requires [`Scenario::restart`].
    pub hang: Option<HangPolicy>,
    /// The script.
    pub steps: Vec<Step>,
}

impl Scenario {
    /// A new scenario with `workers` devices and the default queue
    /// capacity (16), genuinely provisioned, with an empty script.
    pub fn new(name: &'static str, workers: usize) -> Self {
        Scenario {
            name,
            workers,
            queue_capacity: 16,
            provisioning: Provisioning::Genuine,
            model: SimModel::BandSelective,
            kernel_threads: 1,
            restart: None,
            hang: None,
            steps: Vec::new(),
        }
    }

    /// Sets the admission-queue capacity.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the model the fleet serves.
    #[must_use]
    pub fn model(mut self, model: SimModel) -> Self {
        self.model = model;
        self
    }

    /// Sets the GEMM kernel thread budget for the run (restored to its
    /// previous value afterwards).
    #[must_use]
    pub fn kernel_threads(mut self, threads: usize) -> Self {
        self.kernel_threads = threads;
        self
    }

    /// Sets the provisioning mode.
    #[must_use]
    pub fn provisioning(mut self, provisioning: Provisioning) -> Self {
        self.provisioning = provisioning;
        self
    }

    /// Enables worker supervision under `policy` (see
    /// [`omg_serve::RestartPolicy`]).
    #[must_use]
    pub fn restart(mut self, policy: RestartPolicy) -> Self {
        self.restart = Some(policy);
        self
    }

    /// Enables the liveness watchdog under `policy` (see
    /// [`omg_serve::HangPolicy`]); requires [`Scenario::restart`].
    #[must_use]
    pub fn hang(mut self, policy: HangPolicy) -> Self {
        self.hang = Some(policy);
        self
    }

    /// Appends a [`Step::Pause`].
    #[must_use]
    pub fn pause(mut self) -> Self {
        self.steps.push(Step::Pause);
        self
    }

    /// Appends a [`Step::Resume`].
    #[must_use]
    pub fn resume(mut self) -> Self {
        self.steps.push(Step::Resume);
        self
    }

    /// Appends a [`Step::AwaitParked`].
    #[must_use]
    pub fn await_parked(mut self, n: usize) -> Self {
        self.steps.push(Step::AwaitParked(n));
        self
    }

    /// Appends a [`Step::Fault`].
    #[must_use]
    pub fn fault(mut self, query: u64, fault: QueryFault) -> Self {
        self.steps.push(Step::Fault { query, fault });
        self
    }

    /// Appends a [`Step::Submit`].
    #[must_use]
    pub fn submit(mut self, count: usize) -> Self {
        self.steps.push(Step::Submit { count });
        self
    }

    /// Appends a [`Step::SubmitWithBudget`].
    #[must_use]
    pub fn submit_with_budget(mut self, count: usize, budget: Duration) -> Self {
        self.steps.push(Step::SubmitWithBudget { count, budget });
        self
    }

    /// Appends a [`Step::AwaitSettled`].
    #[must_use]
    pub fn await_settled(mut self) -> Self {
        self.steps.push(Step::AwaitSettled);
        self
    }

    /// Appends a [`Step::WakeHung`].
    #[must_use]
    pub fn wake_hung(mut self) -> Self {
        self.steps.push(Step::WakeHung);
        self
    }

    /// Appends a [`Step::AwaitZombies`].
    #[must_use]
    pub fn await_zombies(mut self, n: u64) -> Self {
        self.steps.push(Step::AwaitZombies(n));
        self
    }

    /// Renders the script, one step per line — what a failure report
    /// prints as the reproducer.
    pub fn script(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "scenario {:?}: workers={} queue_capacity={} provisioning={:?} model={:?} kernel_threads={}",
            self.name,
            self.workers,
            self.queue_capacity,
            self.provisioning,
            self.model,
            self.kernel_threads
        );
        // Only rendered for supervised scenarios, so every pre-supervision
        // script (and its recorded trace) stays byte-identical.
        if let Some(policy) = &self.restart {
            let _ = writeln!(out, "  restart: {policy:?}");
        }
        if let Some(policy) = &self.hang {
            let _ = writeln!(out, "  hang: {policy:?}");
        }
        for (i, step) in self.steps.iter().enumerate() {
            let _ = writeln!(out, "  {i:>2}. {step}");
        }
        out
    }

    /// Executes the scenario against a real fleet and checks the full
    /// invariant suite. Never panics on scenario failure — violations are
    /// collected in the report (see [`SimReport::assert_clean`]).
    pub fn run(&self, seed: u64) -> SimReport {
        Engine::new(self, seed).run()
    }
}

/// The outcome of one [`Scenario::run`].
#[derive(Debug)]
pub struct SimReport {
    /// Scenario name.
    pub name: &'static str,
    /// The seed this run used.
    pub seed: u64,
    /// The deterministic event trace: scripted steps, per-query admission
    /// results and outcomes (in submission order), and the final
    /// accounting line. Same scenario + same seed ⇒ identical trace.
    pub trace: Vec<String>,
    /// Invariant violations found after the run; empty on a clean run.
    pub violations: Vec<String>,
    /// The rendered script + seed (one-line reproducer material).
    pub script: String,
    /// What drain returned, when it terminated in time.
    pub drained: Option<DrainedServe>,
    /// Merged time-ordered flight-recorder snapshot, taken from a recorder
    /// handle cloned **before** drain — so it survives even a drain that
    /// hangs or a fleet that died. Timestamps make it non-deterministic;
    /// the replay-equality guarantee covers [`Self::trace`] only.
    pub flight_trace: Option<TraceSnapshot>,
    /// Final metrics snapshot (the serve registry + global registry as
    /// JSON), when drain terminated in time.
    pub metrics_json: Option<String>,
}

impl SimReport {
    /// Whether every invariant held.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// The copy-paste command that replays this exact run.
    pub fn reproducer(&self) -> String {
        format!("OMG_SIM_SEEDS={} cargo test -p omg-sim", self.seed)
    }

    /// Panics with the scenario script, seed, reproducer, and the tail of
    /// the flight-recorder trace if any invariant was violated — the
    /// failure mode CI prints, so a chaos failure ships with the last
    /// thing every worker was doing.
    pub fn assert_clean(&self) {
        if self.is_clean() {
            return;
        }
        let trace_tail = match &self.flight_trace {
            Some(snapshot) => snapshot.render_tail(40),
            None => "flight recorder: disabled".to_string(),
        };
        panic!(
            "scenario {:?} (seed {}) violated {} invariant(s):\n  - {}\n\nscript:\n{}\n{}\nreproduce with: {}\n",
            self.name,
            self.seed,
            self.violations.len(),
            self.violations.join("\n  - "),
            self.script,
            trace_tail,
            self.reproducer(),
        );
    }
}

/// A frequency-band-selective FC model over the 49×43 fingerprint: output
/// `r` sums the energy in frequency band `r`, so utterances of different
/// synthetic words (distinct formant tracks) map to *different* classes —
/// a cross-wired or residue-contaminated response cannot hide behind a
/// constant prediction.
fn band_selective_model() -> Model {
    let mut b = Model::builder();
    let input = b.add_activation(
        "in",
        vec![1, FINGERPRINT_LEN],
        DType::I8,
        Some(QuantParams {
            scale: 1.0 / 255.0,
            zero_point: -128,
        }),
    );
    let mut w = vec![0i8; 12 * FINGERPRINT_LEN];
    for r in 0..12 {
        for t in 0..49 {
            for c in 0..43 {
                if c * 12 / 43 == r {
                    w[r * FINGERPRINT_LEN + t * 43 + c] = 4;
                }
            }
        }
    }
    let wt = b.add_weight_i8(
        "w",
        vec![12, FINGERPRINT_LEN],
        w,
        QuantParams::symmetric(0.01),
    );
    let bias = b.add_weight_i32("b", vec![12], vec![0; 12]);
    let out = b.add_activation(
        "logits",
        vec![1, 12],
        DType::I8,
        Some(QuantParams {
            scale: 0.5,
            zero_point: 0,
        }),
    );
    b.add_op(Op::FullyConnected {
        input,
        filter: wt,
        bias,
        output: out,
        activation: Activation::None,
    });
    b.set_input(input);
    b.set_output(out);
    b.set_labels(omg_speech::dataset::LABELS);
    b.build().expect("band-selective model builds")
}

/// A conv-heavy keyword model with the paper's `tiny_conv` geometry: 8
/// filters of 10×8 (stride 2×2, SAME, ReLU) over the 49×43 fingerprint,
/// then an FC onto the 12 labels. Still band-selective end to end: each
/// conv channel samples a distinct tap phase with positive weights (so
/// channel energy is monotone in window energy), and FC row `r` sums the
/// conv columns that fold back onto frequency band `r` — distinct formant
/// tracks still map to distinct classes.
///
/// The point of the geometry is the im2col GEMM it lowers to: m=550
/// output cells × n=8 channels × k=80 taps clears both row-panel
/// threading thresholds, so a kernel thread budget > 1 makes every query
/// spawn scoped GEMM threads *inside* the serving worker.
fn conv_heavy_model() -> Model {
    let mut b = Model::builder();
    let input = b.add_activation(
        "in",
        vec![1, 49, 43, 1],
        DType::I8,
        Some(QuantParams {
            scale: 1.0 / 255.0,
            zero_point: -128,
        }),
    );
    let mut cw = vec![0i8; 8 * 10 * 8];
    for ch in 0..8 {
        for kh in 0..10 {
            for kw in 0..8 {
                if (kh + kw) % 8 == ch {
                    cw[ch * 80 + kh * 8 + kw] = 3;
                }
            }
        }
    }
    let cwt = b.add_weight_i8(
        "conv/w",
        vec![8, 10, 8, 1],
        cw,
        QuantParams::symmetric(0.02),
    );
    let cb = b.add_weight_i32("conv/b", vec![8], vec![0; 8]);
    let conv = b.add_activation(
        "conv",
        vec![1, 25, 22, 8],
        DType::I8,
        Some(QuantParams {
            scale: 0.01,
            zero_point: -128,
        }),
    );
    b.add_op(Op::Conv2D {
        input,
        filter: cwt,
        bias: cb,
        output: conv,
        stride_h: 2,
        stride_w: 2,
        padding: Padding::Same,
        activation: Activation::Relu,
    });
    let conv_len = 25 * 22 * 8;
    let mut w = vec![0i8; 12 * conv_len];
    for r in 0..12 {
        for oh in 0..25 {
            for ow in 0..22 {
                // Conv column `ow` covers input columns starting near
                // `2*ow`; fold it back onto its frequency band.
                if (ow * 2).min(42) * 12 / 43 == r {
                    for ch in 0..8 {
                        w[r * conv_len + (oh * 22 + ow) * 8 + ch] = 2;
                    }
                }
            }
        }
    }
    let wt = b.add_weight_i8("fc/w", vec![12, conv_len], w, QuantParams::symmetric(0.01));
    let bias = b.add_weight_i32("fc/b", vec![12], vec![0; 12]);
    let out = b.add_activation(
        "logits",
        vec![1, 12],
        DType::I8,
        Some(QuantParams {
            scale: 0.1,
            zero_point: 0,
        }),
    );
    b.add_op(Op::FullyConnected {
        input: conv,
        filter: wt,
        bias,
        output: out,
        activation: Activation::None,
    });
    b.set_input(input);
    b.set_output(out);
    b.set_labels(omg_speech::dataset::LABELS);
    b.build().expect("conv-heavy model builds")
}

/// One submission's bookkeeping: which utterance was sent and how to
/// redeem the answer.
struct Ticket {
    seq: u64,
    pick: usize,
    waiter: Option<Pending>,
    admission: Option<ServeError>,
}

struct Engine<'s> {
    scenario: &'s Scenario,
    seed: u64,
    rng: StdRng,
    trace: Vec<String>,
    violations: Vec<String>,
}

impl<'s> Engine<'s> {
    fn new(scenario: &'s Scenario, seed: u64) -> Self {
        Engine {
            scenario,
            seed,
            rng: StdRng::seed_from_u64(seed),
            trace: Vec::new(),
            violations: Vec::new(),
        }
    }

    fn event(&mut self, line: String) {
        self.trace.push(line);
    }

    fn violation(&mut self, line: String) {
        self.violations.push(line);
    }

    /// Provisioning-attack preamble: attempt the scripted tampered
    /// provisioning and record that the protocol rejected it. The scenario
    /// then proceeds on a genuine fleet so every other invariant is still
    /// exercised.
    fn run_provisioning_attack(&mut self, model: &Model) {
        match self.scenario.provisioning {
            Provisioning::Genuine => {}
            Provisioning::TamperedRuntimeImage => {
                let mut device = OmgDevice::new(self.seed ^ 0x7441_4D50).expect("device");
                let mut user = User::new(self.seed ^ 1);
                let mut vendor = Vendor::new(
                    self.seed ^ 2,
                    "kws",
                    model.clone(),
                    omg_core::device::expected_enclave_measurement(),
                );
                let mut evil = omg_core::device::omg_enclave_image();
                evil[64] ^= 0x01;
                match device.prepare_with_image(&mut user, &mut vendor, evil) {
                    Err(OmgError::Sanctuary(_)) => self
                        .event("provision: tampered runtime image rejected by attestation".into()),
                    Err(e) => self.violation(format!(
                        "tampered runtime rejected with the wrong error: {e:?}"
                    )),
                    Ok(()) => self.violation("tampered runtime image passed attestation".into()),
                }
                // A rejected enclave must leave a genuinely fresh device.
                if device.phase() != omg_core::device::DevicePhase::Fresh {
                    self.violation("rejected preparation left a non-fresh device".into());
                }
            }
            Provisioning::TamperedSealedModel => {
                let mut device = OmgDevice::new(self.seed ^ 0x5345_414C).expect("device");
                let mut user = User::new(self.seed ^ 3);
                let mut vendor = Vendor::new(
                    self.seed ^ 4,
                    "kws",
                    model.clone(),
                    omg_core::device::expected_enclave_measurement(),
                );
                device
                    .prepare(&mut user, &mut vendor)
                    .expect("genuine preparation succeeds");
                device
                    .storage_mut()
                    .tamper("kws")
                    .expect("stored package present")
                    .ciphertext[17] ^= 0x80;
                match device.initialize(&mut vendor) {
                    Err(OmgError::RollbackDetected) => self.event(
                        "provision: tampered sealed model rejected by authenticated decryption"
                            .into(),
                    ),
                    Err(e) => self.violation(format!(
                        "tampered sealed model rejected with the wrong error: {e:?}"
                    )),
                    Ok(()) => self.violation("tampered sealed model decrypted successfully".into()),
                }
            }
        }
    }

    fn run(mut self) -> SimReport {
        let model = match self.scenario.model {
            SimModel::BandSelective => band_selective_model(),
            SimModel::ConvHeavy => conv_heavy_model(),
        };
        // Install the scenario's GEMM thread budget for the whole run
        // (ground truth included — the threaded path is bit-exact, so this
        // cannot skew the comparison) and restore it afterwards.
        let prev_budget = omg_nn::gemm::set_thread_budget(self.scenario.kernel_threads);

        self.run_provisioning_attack(&model);

        // Ground truth on an isolated reference device: the pool spans
        // multiple classes, so a cross-wired response cannot hide.
        let data = SyntheticSpeechCommands::new(900);
        let pool: Vec<Vec<i16>> = (0..12)
            .map(|i| data.utterance(2 + i % 10, i as u64).expect("utterance"))
            .collect();
        let mut reference = provision_devices(1, "kws", model.clone(), self.seed ^ 0x5245_4600)
            .expect("reference device")
            .pop()
            .expect("one device");
        let expected: Vec<(usize, std::sync::Arc<str>)> = pool
            .iter()
            .map(|samples| {
                let t = reference
                    .classify_utterance(samples)
                    .expect("reference classification");
                (t.class_index, t.label)
            })
            .collect();

        // The fleet under test, with the chaos seam installed.
        let plan = Arc::new(FaultPlan::new());
        let handle = ServeHandle::provision(
            self.scenario.workers,
            ServeConfig {
                queue_capacity: self.scenario.queue_capacity,
                slo: None,
                faults: Some(Arc::clone(&plan)),
                kernel_threads: Some(self.scenario.kernel_threads),
                restart: self.scenario.restart.clone(),
                hang: self.scenario.hang.clone(),
                // Forced on (not env-dependent): every chaos failure must
                // be able to dump a merged trace of what the fleet did.
                recorder_capacity: Some(1024),
            },
            "kws",
            model.clone(),
            self.seed,
        )
        .expect("fleet provisions");

        // Execute the script.
        let mut tickets: Vec<Ticket> = Vec::new();
        for step in &self.scenario.steps {
            self.trace.push(format!("step: {step}"));
            match step {
                Step::Pause => plan.pause(),
                Step::Resume => plan.resume(),
                Step::AwaitParked(n) => plan.await_parked(*n),
                Step::Fault { query, fault } => plan.fault_query(*query, fault.clone()),
                Step::Submit { count } => {
                    for _ in 0..*count {
                        let seq = tickets.len() as u64;
                        let pick = self.rng.gen_range(0..pool.len());
                        let (waiter, admission) = match handle.submit(&pool[pick]) {
                            Ok(p) => (Some(p), None),
                            Err(e) => (None, Some(e)),
                        };
                        self.trace.push(admission_line(seq, pick, &admission));
                        tickets.push(Ticket {
                            seq,
                            pick,
                            waiter,
                            admission,
                        });
                    }
                }
                Step::SubmitWithBudget { count, budget } => {
                    for _ in 0..*count {
                        let seq = tickets.len() as u64;
                        let pick = self.rng.gen_range(0..pool.len());
                        let (waiter, admission) =
                            match handle.submit_with_deadline(&pool[pick], *budget) {
                                Ok(p) => (Some(p), None),
                                Err(e) => (None, Some(e)),
                            };
                        self.trace.push(admission_line(seq, pick, &admission));
                        tickets.push(Ticket {
                            seq,
                            pick,
                            waiter,
                            admission,
                        });
                    }
                }
                Step::AwaitSettled => {
                    let deadline = std::time::Instant::now() + TICKET_TIMEOUT;
                    loop {
                        let s = handle.stats();
                        let books_balance =
                            s.completed + s.rejected + s.failed + s.shed + s.discarded
                                == s.submitted;
                        let recovering = handle.worker_health().iter().any(|h| {
                            matches!(
                                h,
                                WorkerHealth::Down | WorkerHealth::Restarting | WorkerHealth::Hung
                            )
                        });
                        if books_balance && s.queued == 0 && !recovering {
                            break;
                        }
                        if std::time::Instant::now() >= deadline {
                            self.violations.push(format!(
                                "await-settled: fleet did not settle within {TICKET_TIMEOUT:?} \
                                 (queued={}, identity gap={}, recovering={recovering})",
                                s.queued,
                                s.submitted
                                    - (s.completed + s.rejected + s.failed + s.shed + s.discarded),
                            ));
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                Step::WakeHung => plan.wake_hung(),
                Step::AwaitZombies(n) => {
                    let deadline = std::time::Instant::now() + TICKET_TIMEOUT;
                    loop {
                        let discards = handle.stats().zombie_discards;
                        if discards >= *n {
                            break;
                        }
                        if std::time::Instant::now() >= deadline {
                            self.violations.push(format!(
                                "await-zombies: {discards} zombie discard(s) after \
                                 {TICKET_TIMEOUT:?}, wanted {n}"
                            ));
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
            }
        }

        // Supervised scenarios record the recovery tally in the
        // deterministic trace (they settle first via `await_settled`, so
        // these are fixed facts, not races against the supervisor).
        if self.scenario.restart.is_some() {
            let s = handle.stats();
            self.trace.push(format!(
                "recovery: restarts={} quarantined={} retried={} hung={} health={:?}",
                s.restarts,
                s.quarantined,
                s.retried,
                s.hung,
                handle.health()
            ));
        }

        // Hygiene before drain: release any still-wedged zombies (one-way,
        // a no-op when the script already did or nothing ever hung) so the
        // detached threads can exit instead of leaking a parked wait. Their
        // late completions lose the fill race and publish nothing, so the
        // deterministic trace is unaffected.
        plan.wake_hung();

        // Clone the recorder handle *before* the serve handle moves into
        // the drainer thread: if drain hangs, the post-mortem trace is
        // still reachable.
        let recorder = handle.recorder();

        // Invariant 2: drain terminates (watchdog-bounded). The drain runs
        // on a helper thread so a hang is a report line, not a hung suite.
        let (tx, rx) = mpsc::channel();
        let drainer = std::thread::spawn(move || {
            let _ = tx.send(handle.drain());
        });
        let drained = match rx.recv_timeout(DRAIN_TIMEOUT) {
            Ok(d) => {
                let _ = drainer.join();
                Some(d)
            }
            Err(_) => {
                self.violation(format!("drain did not terminate within {DRAIN_TIMEOUT:?}"));
                None
            }
        };
        let flight_trace = recorder.as_ref().map(|r| r.snapshot());
        let metrics_json = drained.as_ref().map(|d| d.metrics_json.clone());

        // Invariant 1 + 5: every ticket resolves, and successful answers
        // match the reference. Outcomes are traced in submission order, so
        // the trace is independent of completion interleaving.
        for ticket in tickets.iter_mut() {
            let outcome = match (ticket.waiter.take(), &ticket.admission) {
                (None, Some(err)) => format!("rejected at admission ({})", error_tag(err)),
                (Some(pending), _) => match pending.wait_deadline(TICKET_TIMEOUT) {
                    Ok(Ok(t)) => {
                        let (want_class, want_label) = &expected[ticket.pick];
                        if t.class_index != *want_class || t.label != *want_label {
                            self.violations.push(format!(
                                "seq {}: wrong answer: got class {} ({}), want {} ({})",
                                ticket.seq, t.class_index, t.label, want_class, want_label
                            ));
                        }
                        format!("ok class={} label={}", t.class_index, t.label)
                    }
                    Ok(Err(e)) => error_tag(&e).to_string(),
                    Err(_) => {
                        self.violations.push(format!(
                            "seq {}: ticket never resolved (hung waiter)",
                            ticket.seq
                        ));
                        "HUNG".into()
                    }
                },
                (None, None) => unreachable!("ticket without waiter or admission error"),
            };
            self.trace
                .push(format!("outcome seq={}: {outcome}", ticket.seq));
        }

        // Invariants 3, 4, 6, 7, 8 need the drained fleet.
        if let Some(drained) = &drained {
            let s = &drained.stats;
            self.trace.push(format!(
                "accounting: submitted={} completed={} rejected={} failed={} shed={} discarded={} queued={}",
                s.submitted, s.completed, s.rejected, s.failed, s.shed, s.discarded, s.queued
            ));
            let mut errors: Vec<&'static str> =
                drained.worker_errors.iter().map(error_tag).collect();
            errors.sort_unstable();
            self.trace.push(format!(
                "drain: healthy={} surviving_devices={} worker_errors={errors:?}",
                drained.is_healthy(),
                drained.devices.len(),
            ));

            if s.completed + s.rejected + s.failed + s.shed + s.discarded != s.submitted {
                self.violations.push(format!(
                    "accounting identity violated: {} + {} + {} + {} + {} != {}",
                    s.completed, s.rejected, s.failed, s.shed, s.discarded, s.submitted
                ));
            }
            if s.submitted != tickets.len() as u64 {
                self.violations.push(format!(
                    "runtime saw {} submissions, driver made {}",
                    s.submitted,
                    tickets.len()
                ));
            }
            if s.queued != 0 {
                self.violations
                    .push(format!("{} jobs still queued after drain", s.queued));
            }
            // Per-slot served counters live in shared state and survive
            // panics and supervisor restarts, so the sum is *exactly* the
            // completed count — for dirty drains too.
            let per_worker: u64 = drained.served_per_worker.iter().sum();
            if per_worker != s.completed {
                self.violations.push(format!(
                    "per-worker counts sum to {per_worker}, completed is {}",
                    s.completed
                ));
            }
            if drained.devices.len() + drained.worker_errors.len() != self.scenario.workers {
                self.violations.push(format!(
                    "worker conservation violated: {} devices + {} errors != {} workers",
                    drained.devices.len(),
                    drained.worker_errors.len(),
                    self.scenario.workers
                ));
            }
            // Invariant 9 (capacity convergence): a supervised fleet with
            // no quarantined slot must have restarted every death — full
            // capacity back, no terminal worker errors.
            if self.scenario.restart.is_some() && s.quarantined == 0 {
                if !drained.worker_errors.is_empty() {
                    let mut errors: Vec<&'static str> =
                        drained.worker_errors.iter().map(error_tag).collect();
                    errors.sort_unstable();
                    self.violations.push(format!(
                        "supervised fleet left terminal worker errors without quarantine: \
                         {errors:?}"
                    ));
                }
                if drained.devices.len() != self.scenario.workers {
                    self.violations.push(format!(
                        "capacity did not converge: {} devices back, fleet size {}",
                        drained.devices.len(),
                        self.scenario.workers
                    ));
                }
            }

            // Invariant 6 + 7: scrubbed arenas, ciphertext-only storage.
            let plaintext = omg_nn::format::serialize(&model);
            let windows: std::collections::HashSet<&[u8]> = plaintext.windows(16).collect();
            for (i, device) in drained.devices.iter().enumerate() {
                if device.interpreter_arena_scrubbed() != Some(true) {
                    self.violations
                        .push(format!("surviving device {i}: arena not scrubbed"));
                }
                let view = device.storage().attacker_view();
                if view.windows(16).any(|w| windows.contains(w)) {
                    self.violations.push(format!(
                        "surviving device {i}: plaintext model bytes visible in untrusted storage"
                    ));
                }
            }
        }

        // Faults the scenario scheduled but no worker consumed point at a
        // script bug (e.g. targeting a rejected seq) — surface them.
        if plan.pending_faults() != 0 {
            self.violations.push(format!(
                "{} scheduled fault(s) were never reached",
                plan.pending_faults()
            ));
        }

        omg_nn::gemm::set_thread_budget(prev_budget);

        let report = SimReport {
            name: self.scenario.name,
            seed: self.seed,
            trace: self.trace,
            violations: self.violations,
            script: self.scenario.script(),
            drained,
            flight_trace,
            metrics_json,
        };
        dump_artifacts(&report);
        report
    }
}

/// When `OMG_SIM_TRACE_DIR` is set, writes the run's merged flight trace
/// and metrics snapshot as `<name>-<seed>.trace.txt` / `.metrics.json`
/// under that directory (created if needed) — the files CI uploads as
/// workflow artifacts. Best-effort: IO failures never fail a scenario.
fn dump_artifacts(report: &SimReport) {
    let Ok(dir) = std::env::var("OMG_SIM_TRACE_DIR") else {
        return;
    };
    if dir.is_empty() || std::fs::create_dir_all(&dir).is_err() {
        return;
    }
    let base = format!("{dir}/{}-{}", report.name, report.seed);
    if let Some(snapshot) = &report.flight_trace {
        let _ = std::fs::write(format!("{base}.trace.txt"), snapshot.render());
    }
    if let Some(json) = &report.metrics_json {
        let _ = std::fs::write(format!("{base}.metrics.json"), json);
    }
}

/// Parses an `OMG_SIM_SEEDS`-style seed matrix: comma-separated u64
/// seeds, surrounding whitespace tolerated, empty tokens skipped (so a
/// trailing comma is fine). A malformed token fails with an error that
/// names the bad token and the expected format — not a bare `ParseIntError`
/// panic deep inside a test helper.
///
/// # Errors
///
/// A message naming the offending token and the expected format.
pub fn parse_seed_matrix(raw: &str) -> Result<Vec<u64>, String> {
    let mut seeds = Vec::new();
    for token in raw.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        let seed = token.parse::<u64>().map_err(|_| {
            format!(
                "OMG_SIM_SEEDS: bad token {token:?} in {raw:?}; expected comma-separated \
                 unsigned 64-bit seeds, e.g. \"7,42,1337\""
            )
        })?;
        seeds.push(seed);
    }
    Ok(seeds)
}

fn admission_line(seq: u64, pick: usize, admission: &Option<ServeError>) -> String {
    match admission {
        None => format!("submit seq={seq} pick={pick} -> admitted"),
        Some(e) => format!("submit seq={seq} pick={pick} -> bounced ({})", error_tag(e)),
    }
}

/// A stable, latency-free tag for an error — what the deterministic trace
/// records instead of `Display` text that might grow detail over time.
fn error_tag(e: &ServeError) -> &'static str {
    match e {
        ServeError::Overloaded => "Overloaded",
        ServeError::Expired => "Expired",
        ServeError::ShuttingDown => "ShuttingDown",
        ServeError::Config(_) => "Config",
        ServeError::WorkerPanicked => "WorkerPanicked",
        ServeError::Hung => "Hung",
        ServeError::Query(OmgError::DeviceCrashed) => "Query(DeviceCrashed)",
        ServeError::Query(_) => "Query",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn script_renders_every_step() {
        let s = Scenario::new("demo", 2)
            .queue_capacity(4)
            .pause()
            .submit(2)
            .await_parked(2)
            .fault(0, QueryFault::WorkerPanic)
            .submit_with_budget(1, Duration::ZERO)
            .resume();
        let script = s.script();
        for needle in [
            "workers=2",
            "queue_capacity=4",
            "pause",
            "submit 2",
            "await-parked 2",
            "fault seq=0 WorkerPanic",
            "budget=",
            "resume",
        ] {
            assert!(script.contains(needle), "missing {needle:?} in:\n{script}");
        }
    }

    #[test]
    fn reproducer_names_the_seed() {
        let report = SimReport {
            name: "x",
            seed: 1337,
            trace: vec![],
            violations: vec![],
            script: String::new(),
            drained: None,
            flight_trace: None,
            metrics_json: None,
        };
        assert!(report.reproducer().contains("OMG_SIM_SEEDS=1337"));
        report.assert_clean();
    }

    #[test]
    #[should_panic(expected = "reproduce with")]
    fn assert_clean_panics_with_reproducer() {
        let report = SimReport {
            name: "x",
            seed: 7,
            trace: vec![],
            violations: vec!["boom".into()],
            script: "scenario".into(),
            drained: None,
            flight_trace: None,
            metrics_json: None,
        };
        report.assert_clean();
    }

    #[test]
    #[should_panic(expected = "flight recorder:")]
    fn assert_clean_dumps_the_trace_tail() {
        // A violated report with a captured trace prints its tail.
        let recorder = omg_obs::FlightRecorder::new(1, 8);
        recorder.record(0, omg_obs::Stage::Submit, 0, 16_000);
        let report = SimReport {
            name: "x",
            seed: 7,
            trace: vec![],
            violations: vec!["boom".into()],
            script: "scenario".into(),
            drained: None,
            flight_trace: Some(recorder.snapshot()),
            metrics_json: None,
        };
        report.assert_clean();
    }

    #[test]
    fn seed_matrix_parses_and_names_bad_tokens() {
        assert_eq!(parse_seed_matrix("7,42,1337").unwrap(), vec![7, 42, 1337]);
        assert_eq!(
            parse_seed_matrix(" 8675309 , 1 ,").unwrap(),
            vec![8675309, 1]
        );
        assert_eq!(parse_seed_matrix("").unwrap(), Vec::<u64>::new());
        let err = parse_seed_matrix("7,fortytwo,9").unwrap_err();
        assert!(err.contains("\"fortytwo\""), "{err}");
        assert!(err.contains("comma-separated"), "{err}");
        let err = parse_seed_matrix("-3").unwrap_err();
        assert!(err.contains("\"-3\""), "{err}");
    }

    #[test]
    fn run_captures_flight_trace_and_metrics() {
        let report = Scenario::new("obs-capture", 2).submit(6).run(11);
        report.assert_clean();
        let trace = report.flight_trace.as_ref().expect("recorder forced on");
        // 6 queries × (submit, dequeue, compute-start, compute-end, reply).
        assert_eq!(trace.events.len(), 30, "{}", trace.render());
        assert_eq!(trace.dropped, 0);
        let json = report.metrics_json.as_ref().expect("drain terminated");
        assert!(json.contains("\"omg_serve_submitted_total\":6"), "{json}");
        assert!(
            json.contains("omg_core_devices_provisioned_total"),
            "{json}"
        );
    }
}
