//! Error types for the inference engine.

use std::error::Error;
use std::fmt;

/// Errors raised by model construction, serialization, and inference.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// A tensor id referenced by an op does not exist.
    UnknownTensor {
        /// The offending tensor index.
        id: usize,
    },
    /// Tensor shapes are inconsistent with the op's expectations.
    ShapeMismatch {
        /// Which op or check detected the mismatch.
        context: &'static str,
        /// Details of the mismatch.
        detail: String,
    },
    /// A tensor was used with the wrong element type.
    DtypeMismatch {
        /// Which op or check detected the mismatch.
        context: &'static str,
    },
    /// Required quantization parameters are missing.
    MissingQuantization {
        /// Name of the tensor lacking parameters.
        tensor: String,
    },
    /// A weight buffer has the wrong byte length for its tensor.
    BufferSizeMismatch {
        /// Name of the tensor.
        tensor: String,
        /// Expected byte length.
        expected: usize,
        /// Actual byte length.
        got: usize,
    },
    /// Input data passed to `invoke` has the wrong length.
    BadInputLength {
        /// Expected element count.
        expected: usize,
        /// Provided element count.
        got: usize,
    },
    /// The serialized model is malformed.
    MalformedModel(&'static str),
    /// The serialized model has an unsupported version or magic.
    UnsupportedFormat {
        /// Explanation of what was unsupported.
        detail: String,
    },
    /// The arena is too small for the activation plan.
    ArenaTooSmall {
        /// Bytes required by the plan.
        required: usize,
        /// Bytes available.
        available: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::UnknownTensor { id } => write!(f, "unknown tensor id {id}"),
            NnError::ShapeMismatch { context, detail } => {
                write!(f, "shape mismatch in {context}: {detail}")
            }
            NnError::DtypeMismatch { context } => write!(f, "dtype mismatch in {context}"),
            NnError::MissingQuantization { tensor } => {
                write!(f, "tensor {tensor} lacks quantization parameters")
            }
            NnError::BufferSizeMismatch {
                tensor,
                expected,
                got,
            } => {
                write!(
                    f,
                    "buffer for tensor {tensor} has {got} bytes, expected {expected}"
                )
            }
            NnError::BadInputLength { expected, got } => {
                write!(f, "input has {got} elements, model expects {expected}")
            }
            NnError::MalformedModel(what) => write!(f, "malformed model: {what}"),
            NnError::UnsupportedFormat { detail } => write!(f, "unsupported format: {detail}"),
            NnError::ArenaTooSmall {
                required,
                available,
            } => {
                write!(
                    f,
                    "arena too small: need {required} bytes, have {available}"
                )
            }
        }
    }
}

impl Error for NnError {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = NnError::BufferSizeMismatch {
            tensor: "conv/filter".into(),
            expected: 640,
            got: 639,
        };
        assert!(e.to_string().contains("conv/filter"));
        assert!(e.to_string().contains("640"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
