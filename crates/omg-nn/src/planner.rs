//! Greedy arena memory planning, TFLM style.
//!
//! TensorFlow Lite for Microcontrollers executes without a heap: all
//! activation tensors live in one fixed arena, and a greedy planner overlaps
//! tensors whose lifetimes do not intersect. Running from a fixed arena is
//! also what makes the enclave port clean — the SA's working set is a single
//! TZASC-locked buffer of known size.

/// Lifetime and size of one activation tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorLife {
    /// Tensor id (index into the model's tensor list).
    pub id: usize,
    /// Byte size (already aligned by the caller if needed).
    pub size: usize,
    /// First op index at which the tensor must exist (producers count;
    /// model inputs use 0).
    pub first_use: usize,
    /// Last op index at which the tensor is read (model outputs use the
    /// final op index).
    pub last_use: usize,
}

impl TensorLife {
    fn overlaps(&self, other: &TensorLife) -> bool {
        self.first_use <= other.last_use && other.first_use <= self.last_use
    }
}

/// The result of planning: per-tensor offsets and the arena size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArenaPlan {
    /// `(tensor id, byte offset)` pairs.
    pub offsets: Vec<(usize, usize)>,
    /// Total arena bytes required.
    pub arena_size: usize,
}

impl ArenaPlan {
    /// Offset of a tensor id, if planned.
    pub fn offset_of(&self, id: usize) -> Option<usize> {
        self.offsets.iter().find(|(t, _)| *t == id).map(|(_, o)| *o)
    }
}

/// Plans arena offsets with the greedy-by-size strategy TFLM uses:
/// tensors are placed largest-first at the lowest offset that does not
/// collide with an already placed tensor of overlapping lifetime.
///
/// # Examples
///
/// ```
/// use omg_nn::planner::{plan_arena, TensorLife};
///
/// // Two tensors with disjoint lifetimes share memory.
/// let plan = plan_arena(&[
///     TensorLife { id: 0, size: 100, first_use: 0, last_use: 1 },
///     TensorLife { id: 1, size: 100, first_use: 2, last_use: 3 },
/// ]);
/// assert_eq!(plan.arena_size, 100);
/// ```
pub fn plan_arena(lives: &[TensorLife]) -> ArenaPlan {
    // Deterministic order: decreasing size, ties by id.
    let mut order: Vec<&TensorLife> = lives.iter().collect();
    order.sort_by(|a, b| b.size.cmp(&a.size).then(a.id.cmp(&b.id)));

    let mut placed: Vec<(TensorLife, usize)> = Vec::with_capacity(lives.len());
    for life in order {
        // Collect occupied intervals among lifetime-overlapping tensors.
        let mut busy: Vec<(usize, usize)> = placed
            .iter()
            .filter(|(other, _)| life.overlaps(other))
            .map(|(other, off)| (*off, *off + other.size))
            .collect();
        busy.sort_unstable();
        // First-fit scan.
        let mut offset = 0usize;
        for (start, end) in busy {
            if offset + life.size <= start {
                break;
            }
            offset = offset.max(end);
        }
        placed.push((*life, offset));
    }

    let arena_size = placed.iter().map(|(l, o)| o + l.size).max().unwrap_or(0);
    let offsets = placed.iter().map(|(l, o)| (l.id, *o)).collect();
    ArenaPlan {
        offsets,
        arena_size,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn life(id: usize, size: usize, first: usize, last: usize) -> TensorLife {
        TensorLife {
            id,
            size,
            first_use: first,
            last_use: last,
        }
    }

    #[test]
    fn empty_plan() {
        let plan = plan_arena(&[]);
        assert_eq!(plan.arena_size, 0);
        assert!(plan.offsets.is_empty());
    }

    #[test]
    fn disjoint_lifetimes_share_memory() {
        let plan = plan_arena(&[life(0, 100, 0, 1), life(1, 80, 2, 3), life(2, 60, 4, 5)]);
        assert_eq!(plan.arena_size, 100);
        assert_eq!(plan.offset_of(0), Some(0));
        assert_eq!(plan.offset_of(1), Some(0));
        assert_eq!(plan.offset_of(2), Some(0));
    }

    #[test]
    fn overlapping_lifetimes_do_not_collide() {
        let plan = plan_arena(&[life(0, 100, 0, 2), life(1, 50, 1, 3)]);
        assert_eq!(plan.arena_size, 150);
    }

    #[test]
    fn chain_pattern_reuses_like_tflm() {
        // A linear chain in -> a -> b -> out: `in` dies when `a` is made,
        // `a` dies when `b` is made. Peak = largest adjacent pair.
        let plan = plan_arena(&[
            life(0, 1000, 0, 0), // in, consumed by op0
            life(1, 400, 0, 1),  // a, made op0, consumed op1
            life(2, 600, 1, 2),  // b, made op1, consumed op2
            life(3, 100, 2, 2),  // out
        ]);
        // in+a = 1400 alive together; a+b = 1000; b+out = 700.
        assert_eq!(plan.arena_size, 1400);
    }

    #[test]
    fn gap_filling_first_fit() {
        // Big tensor [0..10], small co-live tensors should fill below/after
        // without pushing the arena beyond necessity.
        let plan = plan_arena(&[life(0, 100, 0, 10), life(1, 40, 0, 10), life(2, 30, 11, 12)]);
        assert_eq!(plan.arena_size, 140);
        assert_eq!(plan.offset_of(2), Some(0)); // reuses freed space
    }

    proptest! {
        /// No two tensors with overlapping lifetimes may overlap in memory,
        /// and the arena must be large enough for every placement.
        #[test]
        fn prop_no_live_overlap(
            specs in proptest::collection::vec(
                (1usize..500, 0usize..6, 0usize..6), 1..20
            )
        ) {
            let lives: Vec<TensorLife> = specs
                .iter()
                .enumerate()
                .map(|(id, &(size, a, b))| life(id, size, a.min(b), a.max(b)))
                .collect();
            let plan = plan_arena(&lives);
            for (i, &(id_a, off_a)) in plan.offsets.iter().enumerate() {
                let la = lives.iter().find(|l| l.id == id_a).unwrap();
                prop_assert!(off_a + la.size <= plan.arena_size);
                for &(id_b, off_b) in &plan.offsets[i + 1..] {
                    let lb = lives.iter().find(|l| l.id == id_b).unwrap();
                    if la.overlaps(lb) {
                        let disjoint = off_a + la.size <= off_b || off_b + lb.size <= off_a;
                        prop_assert!(
                            disjoint,
                            "tensors {id_a} and {id_b} overlap in time and space"
                        );
                    }
                }
            }
        }

        /// The plan never wastes more than the sum of sizes (sanity bound)
        /// and is deterministic.
        #[test]
        fn prop_bounded_and_deterministic(
            specs in proptest::collection::vec(
                (1usize..200, 0usize..4, 0usize..4), 1..12
            )
        ) {
            let lives: Vec<TensorLife> = specs
                .iter()
                .enumerate()
                .map(|(id, &(size, a, b))| life(id, size, a.min(b), a.max(b)))
                .collect();
            let p1 = plan_arena(&lives);
            let p2 = plan_arena(&lives);
            prop_assert_eq!(&p1, &p2);
            let total: usize = lives.iter().map(|l| l.size).sum();
            prop_assert!(p1.arena_size <= total);
        }
    }
}
