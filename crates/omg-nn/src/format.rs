//! The compact binary model format ("OMGM").
//!
//! Plays the role of the `.tflite` flatbuffer in the paper's pipeline: the
//! trainer exports this blob, the vendor encrypts it (Fig. 2 step ③), and
//! the enclave deserializes it after decryption (step ⑥). The format is
//! little-endian throughout with explicit length prefixes and strict bounds
//! checking on parse.
//!
//! # Versions
//!
//! * **v1** (legacy): metadata and buffer bytes interleaved with no
//!   alignment guarantees. Loading copies every tensor out of the blob.
//!   Still fully supported by [`deserialize`] (version dispatch) so
//!   pre-existing artifacts — including the checked-in pre-trained model —
//!   keep working unmodified.
//! * **v2** (current, emitted by [`serialize`]): an alignment-aware
//!   container. All metadata lives in a leading header; every weight and
//!   bias section sits at an explicit offset aligned to
//!   [`crate::buffer::BUFFER_ALIGN`] (64 bytes, ≥ the natural alignment of
//!   every dtype). Because [`ModelBuf`] guarantees an aligned base
//!   address, [`deserialize_shared`] can validate the header and then
//!   *borrow* all parameter data straight out of the decrypted image — no
//!   per-tensor copies, and the interpreter borrows int32 biases in place
//!   instead of decoding a per-interpreter pool.
//!
//! v2 layout:
//!
//! ```text
//! [0..4)    magic "OMGM"
//! [4..6)    version u16 = 2
//! [6..10)   total blob length u32 (must equal the input length)
//! [10..H)   header: description, labels, tensor table, op table,
//!           input/output ids, buffer table (u32 offset + u32 len each),
//!           layout-hint table (u32 align + u32 row_stride per buffer,
//!           count implied by the buffer table)
//! [H..)     zero padding + buffer sections, each at its recorded
//!           64-byte-aligned offset, ascending and non-overlapping
//! ```
//!
//! The layout hints are the promises SIMD kernels build on (base
//! alignment, dense row pitch); [`Model::validate`] cross-checks them
//! against the actual section placement and tensor shapes, so a hostile
//! blob cannot smuggle in hints the layout does not honor.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::buffer::{ByteView, ModelBuf, BUFFER_ALIGN};
use crate::error::{NnError, Result};
use crate::model::{canonical_layout_hints, Activation, BufferLayout, Model, Op, Padding};
use crate::quantize::QuantParams;
use crate::tensor::{DType, TensorId, TensorInfo};

/// Magic bytes at the start of every serialized model.
pub const MAGIC: &[u8; 4] = b"OMGM";
/// Current format version (the zero-copy container).
pub const VERSION: u16 = 2;
/// The legacy copying format version, still accepted by [`deserialize`].
pub const VERSION_V1: u16 = 1;

fn align_up(v: usize, align: usize) -> usize {
    v.div_ceil(align) * align
}

/// Serializes a model to the current (v2, alignment-aware) format.
///
/// # Examples
///
/// ```
/// # use omg_nn::model::{Activation, Model, Op};
/// # use omg_nn::quantize::QuantParams;
/// # use omg_nn::tensor::DType;
/// use omg_nn::format::{serialize, deserialize};
///
/// # let mut b = Model::builder();
/// # let input = b.add_activation("in", vec![1, 4], DType::I8,
/// #     Some(QuantParams { scale: 0.5, zero_point: 0 }));
/// # let w = b.add_weight_i8("w", vec![2, 4], vec![1i8; 8], QuantParams::symmetric(0.25));
/// # let bias = b.add_weight_i32("b", vec![2], vec![0i32; 2]);
/// # let out = b.add_activation("out", vec![1, 2], DType::I8,
/// #     Some(QuantParams { scale: 1.0, zero_point: 0 }));
/// # b.add_op(Op::FullyConnected { input, filter: w, bias, output: out, activation: Activation::None });
/// # b.set_input(input);
/// # b.set_output(out);
/// # let model = b.build()?;
/// let bytes = serialize(&model);
/// let restored = deserialize(&bytes)?;
/// assert_eq!(restored, model);
/// # Ok::<(), omg_nn::NnError>(())
/// ```
pub fn serialize(model: &Model) -> Vec<u8> {
    // Header metadata, minus the buffer table (whose size is fixed per
    // buffer, so section offsets can be computed before emitting it).
    let mut meta = BytesMut::with_capacity(1024);
    put_str32(&mut meta, &model.description);
    meta.put_u16_le(model.labels.len() as u16);
    for label in &model.labels {
        put_str16(&mut meta, label);
    }
    meta.put_u32_le(model.tensors.len() as u32);
    for t in &model.tensors {
        put_tensor(&mut meta, t);
    }
    meta.put_u32_le(model.ops.len() as u32);
    for op in &model.ops {
        put_op(&mut meta, op);
    }
    meta.put_u32_le(model.input.index() as u32);
    meta.put_u32_le(model.output.index() as u32);

    // magic + version + total_len + meta + buffer table + hint table.
    let header_len = 4 + 2 + 4 + meta.len() + 4 + 8 * model.buffers.len() + 8 * model.buffers.len();
    let mut offsets = Vec::with_capacity(model.buffers.len());
    let mut cursor = header_len;
    for b in &model.buffers {
        let off = align_up(cursor, BUFFER_ALIGN);
        offsets.push(off);
        cursor = off + b.len();
    }
    let total_len = cursor;

    let mut buf = BytesMut::with_capacity(total_len);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(total_len as u32);
    buf.put_slice(&meta);
    buf.put_u32_le(model.buffers.len() as u32);
    for (b, &off) in model.buffers.iter().zip(&offsets) {
        buf.put_u32_le(off as u32);
        buf.put_u32_le(b.len() as u32);
    }
    for hint in &model.layout_hints {
        buf.put_u32_le(hint.align);
        buf.put_u32_le(hint.row_stride);
    }
    debug_assert_eq!(buf.len(), header_len);
    const ZEROS: [u8; BUFFER_ALIGN] = [0; BUFFER_ALIGN];
    for (b, &off) in model.buffers.iter().zip(&offsets) {
        buf.put_slice(&ZEROS[..off - buf.len()]);
        buf.put_slice(b);
    }
    buf.to_vec()
}

/// Serializes a model to the legacy v1 layout (no alignment guarantees;
/// loading it goes through the copying decoder). Kept for artifact
/// regeneration and compatibility testing.
pub fn serialize_v1(model: &Model) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(model.weight_bytes() + 1024);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION_V1);

    put_str32(&mut buf, &model.description);

    buf.put_u16_le(model.labels.len() as u16);
    for label in &model.labels {
        put_str16(&mut buf, label);
    }

    buf.put_u32_le(model.tensors.len() as u32);
    for t in &model.tensors {
        put_tensor(&mut buf, t);
    }

    buf.put_u32_le(model.buffers.len() as u32);
    for b in &model.buffers {
        buf.put_u32_le(b.len() as u32);
        buf.put_slice(b);
    }

    buf.put_u32_le(model.ops.len() as u32);
    for op in &model.ops {
        put_op(&mut buf, op);
    }

    buf.put_u32_le(model.input.index() as u32);
    buf.put_u32_le(model.output.index() as u32);
    buf.to_vec()
}

fn put_str16(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn put_str32(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_tensor(buf: &mut BytesMut, t: &TensorInfo) {
    put_str16(buf, t.name());
    buf.put_u8(t.dtype().tag());
    match t.quant() {
        Some(q) => {
            buf.put_u8(1);
            buf.put_f32_le(q.scale);
            buf.put_i32_le(q.zero_point);
        }
        None => buf.put_u8(0),
    }
    buf.put_u32_le(t.buffer().map_or(u32::MAX, |b| b as u32));
    buf.put_u8(t.shape().len() as u8);
    for &d in t.shape() {
        buf.put_u32_le(d as u32);
    }
}

fn put_op(buf: &mut BytesMut, op: &Op) {
    match *op {
        Op::Conv2D {
            input,
            filter,
            bias,
            output,
            stride_h,
            stride_w,
            padding,
            activation,
        } => {
            buf.put_u8(0);
            for id in [input, filter, bias, output] {
                buf.put_u32_le(id.index() as u32);
            }
            buf.put_u16_le(stride_h as u16);
            buf.put_u16_le(stride_w as u16);
            buf.put_u8(padding.tag());
            buf.put_u8(activation.tag());
        }
        Op::DepthwiseConv2D {
            input,
            filter,
            bias,
            output,
            stride_h,
            stride_w,
            padding,
            activation,
            depth_multiplier,
        } => {
            buf.put_u8(1);
            for id in [input, filter, bias, output] {
                buf.put_u32_le(id.index() as u32);
            }
            buf.put_u16_le(stride_h as u16);
            buf.put_u16_le(stride_w as u16);
            buf.put_u8(padding.tag());
            buf.put_u8(activation.tag());
            buf.put_u16_le(depth_multiplier as u16);
        }
        Op::FullyConnected {
            input,
            filter,
            bias,
            output,
            activation,
        } => {
            buf.put_u8(2);
            for id in [input, filter, bias, output] {
                buf.put_u32_le(id.index() as u32);
            }
            buf.put_u8(activation.tag());
        }
        Op::AveragePool2D {
            input,
            output,
            filter_h,
            filter_w,
            stride_h,
            stride_w,
            padding,
        } => {
            buf.put_u8(3);
            buf.put_u32_le(input.index() as u32);
            buf.put_u32_le(output.index() as u32);
            buf.put_u16_le(filter_h as u16);
            buf.put_u16_le(filter_w as u16);
            buf.put_u16_le(stride_h as u16);
            buf.put_u16_le(stride_w as u16);
            buf.put_u8(padding.tag());
        }
        Op::MaxPool2D {
            input,
            output,
            filter_h,
            filter_w,
            stride_h,
            stride_w,
            padding,
        } => {
            buf.put_u8(4);
            buf.put_u32_le(input.index() as u32);
            buf.put_u32_le(output.index() as u32);
            buf.put_u16_le(filter_h as u16);
            buf.put_u16_le(filter_w as u16);
            buf.put_u16_le(stride_h as u16);
            buf.put_u16_le(stride_w as u16);
            buf.put_u8(padding.tag());
        }
        Op::Softmax { input, output } => {
            buf.put_u8(5);
            buf.put_u32_le(input.index() as u32);
            buf.put_u32_le(output.index() as u32);
        }
        Op::Reshape { input, output } => {
            buf.put_u8(6);
            buf.put_u32_le(input.index() as u32);
            buf.put_u32_le(output.index() as u32);
        }
    }
}

/// The bounds-checked read interface both decoders share.
trait ModelReader {
    fn u8(&mut self) -> Result<u8>;
    fn u16(&mut self) -> Result<u16>;
    fn u32(&mut self) -> Result<u32>;
    fn i32(&mut self) -> Result<i32>;
    fn f32(&mut self) -> Result<f32>;
    fn str16(&mut self) -> Result<String>;
    fn str32(&mut self) -> Result<String>;

    fn tensor_id(&mut self, tensor_count: usize) -> Result<TensorId> {
        let idx = self.u32()? as usize;
        if idx >= tensor_count {
            return Err(NnError::MalformedModel("tensor id out of range"));
        }
        Ok(TensorId(idx))
    }
}

/// Legacy bounds-checked reader over an owned copy of the serialized form
/// (the v1 copying decoder).
struct Reader {
    buf: Bytes,
}

impl Reader {
    fn need(&self, n: usize) -> Result<()> {
        if self.buf.remaining() < n {
            Err(NnError::MalformedModel("unexpected end of model data"))
        } else {
            Ok(())
        }
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>> {
        self.need(n)?;
        let mut out = vec![0u8; n];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }
}

impl ModelReader for Reader {
    fn u8(&mut self) -> Result<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self) -> Result<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn i32(&mut self) -> Result<i32> {
        self.need(4)?;
        Ok(self.buf.get_i32_le())
    }

    fn f32(&mut self) -> Result<f32> {
        self.need(4)?;
        Ok(self.buf.get_f32_le())
    }

    fn str16(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw).map_err(|_| NnError::MalformedModel("invalid utf-8 string"))
    }

    fn str32(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw).map_err(|_| NnError::MalformedModel("invalid utf-8 string"))
    }
}

/// Zero-copy bounds-checked reader over a borrowed header (the v2 path:
/// nothing is copied while parsing metadata).
struct SliceReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SliceReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        SliceReader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(NnError::MalformedModel("length overflow"))?;
        if end > self.buf.len() {
            return Err(NnError::MalformedModel("unexpected end of model data"));
        }
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn str_of(&mut self, len: usize) -> Result<String> {
        let raw = self.take(len)?;
        std::str::from_utf8(raw)
            .map(str::to_owned)
            .map_err(|_| NnError::MalformedModel("invalid utf-8 string"))
    }
}

impl ModelReader for SliceReader<'_> {
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn i32(&mut self) -> Result<i32> {
        let b = self.take(4)?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn f32(&mut self) -> Result<f32> {
        let b = self.take(4)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn str16(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        self.str_of(len)
    }

    fn str32(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        self.str_of(len)
    }
}

fn parse_labels<R: ModelReader>(r: &mut R) -> Result<Vec<std::sync::Arc<str>>> {
    let label_count = r.u16()? as usize;
    let mut labels = Vec::with_capacity(label_count);
    for _ in 0..label_count {
        labels.push(r.str16()?.into());
    }
    Ok(labels)
}

fn parse_tensors<R: ModelReader>(r: &mut R) -> Result<Vec<TensorInfo>> {
    let tensor_count = r.u32()? as usize;
    if tensor_count > 1_000_000 {
        return Err(NnError::MalformedModel("absurd tensor count"));
    }
    let mut tensors = Vec::with_capacity(tensor_count);
    for _ in 0..tensor_count {
        let name = r.str16()?;
        let dtype = DType::from_tag(r.u8()?).ok_or(NnError::MalformedModel("unknown dtype tag"))?;
        let quant = match r.u8()? {
            0 => None,
            1 => Some(QuantParams {
                scale: r.f32()?,
                zero_point: r.i32()?,
            }),
            _ => return Err(NnError::MalformedModel("bad quant flag")),
        };
        let buffer_raw = r.u32()?;
        let buffer = if buffer_raw == u32::MAX {
            None
        } else {
            Some(buffer_raw as usize)
        };
        let rank = r.u8()? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(r.u32()? as usize);
        }
        tensors.push(TensorInfo::new(name, shape, dtype, quant, buffer));
    }
    Ok(tensors)
}

fn parse_ops<R: ModelReader>(r: &mut R, tensor_count: usize) -> Result<Vec<Op>> {
    let op_count = r.u32()? as usize;
    let mut ops = Vec::with_capacity(op_count);
    for _ in 0..op_count {
        let opcode = r.u8()?;
        let op = match opcode {
            0 | 1 => {
                let input = r.tensor_id(tensor_count)?;
                let filter = r.tensor_id(tensor_count)?;
                let bias = r.tensor_id(tensor_count)?;
                let output = r.tensor_id(tensor_count)?;
                let stride_h = r.u16()? as usize;
                let stride_w = r.u16()? as usize;
                let padding =
                    Padding::from_tag(r.u8()?).ok_or(NnError::MalformedModel("bad padding tag"))?;
                let activation = Activation::from_tag(r.u8()?)
                    .ok_or(NnError::MalformedModel("bad activation tag"))?;
                if opcode == 0 {
                    Op::Conv2D {
                        input,
                        filter,
                        bias,
                        output,
                        stride_h,
                        stride_w,
                        padding,
                        activation,
                    }
                } else {
                    let depth_multiplier = r.u16()? as usize;
                    Op::DepthwiseConv2D {
                        input,
                        filter,
                        bias,
                        output,
                        stride_h,
                        stride_w,
                        padding,
                        activation,
                        depth_multiplier,
                    }
                }
            }
            2 => {
                let input = r.tensor_id(tensor_count)?;
                let filter = r.tensor_id(tensor_count)?;
                let bias = r.tensor_id(tensor_count)?;
                let output = r.tensor_id(tensor_count)?;
                let activation = Activation::from_tag(r.u8()?)
                    .ok_or(NnError::MalformedModel("bad activation tag"))?;
                Op::FullyConnected {
                    input,
                    filter,
                    bias,
                    output,
                    activation,
                }
            }
            3 | 4 => {
                let input = r.tensor_id(tensor_count)?;
                let output = r.tensor_id(tensor_count)?;
                let filter_h = r.u16()? as usize;
                let filter_w = r.u16()? as usize;
                let stride_h = r.u16()? as usize;
                let stride_w = r.u16()? as usize;
                let padding =
                    Padding::from_tag(r.u8()?).ok_or(NnError::MalformedModel("bad padding tag"))?;
                if opcode == 3 {
                    Op::AveragePool2D {
                        input,
                        output,
                        filter_h,
                        filter_w,
                        stride_h,
                        stride_w,
                        padding,
                    }
                } else {
                    Op::MaxPool2D {
                        input,
                        output,
                        filter_h,
                        filter_w,
                        stride_h,
                        stride_w,
                        padding,
                    }
                }
            }
            5 => Op::Softmax {
                input: r.tensor_id(tensor_count)?,
                output: r.tensor_id(tensor_count)?,
            },
            6 => Op::Reshape {
                input: r.tensor_id(tensor_count)?,
                output: r.tensor_id(tensor_count)?,
            },
            _ => return Err(NnError::MalformedModel("unknown opcode")),
        };
        ops.push(op);
    }
    Ok(ops)
}

/// Deserializes a model from either format version, validating structure
/// and shapes. A v1 blob goes through the legacy copying decoder; a v2
/// blob pays one aligned copy of the whole image and then borrows every
/// buffer out of it (use [`deserialize_shared`] to skip even that copy
/// when you already hold a [`ModelBuf`]).
///
/// # Errors
///
/// [`NnError::UnsupportedFormat`] on magic/version mismatch,
/// [`NnError::MalformedModel`] on truncation or inconsistent ids, plus any
/// model validation error.
pub fn deserialize(data: &[u8]) -> Result<Model> {
    if data.len() < 6 {
        return Err(NnError::MalformedModel("unexpected end of model data"));
    }
    if &data[..4] != MAGIC {
        return Err(NnError::UnsupportedFormat {
            detail: "bad magic".into(),
        });
    }
    match u16::from_le_bytes([data[4], data[5]]) {
        VERSION_V1 => deserialize_v1(data),
        VERSION => deserialize_shared(ModelBuf::copy_from_slice(data)),
        version => Err(NnError::UnsupportedFormat {
            detail: format!("version {version} unsupported"),
        }),
    }
}

/// Zero-copy deserialization from a shared, aligned model image.
///
/// For a v2 image, the returned model's constant buffers are windows into
/// `buf` — no tensor data is copied, and clones of the model (or further
/// loads from the same `buf`) share the one allocation. A v1 image is
/// routed through the copying decoder, so sealed v1 artifacts still load
/// through this entry point.
///
/// # Errors
///
/// Same conditions as [`deserialize`].
pub fn deserialize_shared(buf: ModelBuf) -> Result<Model> {
    let data = buf.as_slice();
    if data.len() < 10 {
        return Err(NnError::MalformedModel("unexpected end of model data"));
    }
    if &data[..4] != MAGIC {
        return Err(NnError::UnsupportedFormat {
            detail: "bad magic".into(),
        });
    }
    match u16::from_le_bytes([data[4], data[5]]) {
        VERSION_V1 => return deserialize_v1(data),
        VERSION => {}
        version => {
            return Err(NnError::UnsupportedFormat {
                detail: format!("version {version} unsupported"),
            })
        }
    }
    let total_len = u32::from_le_bytes([data[6], data[7], data[8], data[9]]) as usize;
    if total_len != data.len() {
        return Err(NnError::MalformedModel("blob length mismatch"));
    }

    let mut r = SliceReader::new(data);
    r.pos = 10;
    let description = r.str32()?;
    let labels = parse_labels(&mut r)?;
    let tensors = parse_tensors(&mut r)?;
    let ops = parse_ops(&mut r, tensors.len())?;
    let input = r.tensor_id(tensors.len())?;
    let output = r.tensor_id(tensors.len())?;

    let buffer_count = r.u32()? as usize;
    if buffer_count > 1_000_000 {
        return Err(NnError::MalformedModel("absurd buffer count"));
    }
    let mut entries = Vec::with_capacity(buffer_count);
    for _ in 0..buffer_count {
        let off = r.u32()? as usize;
        let len = r.u32()? as usize;
        entries.push((off, len));
    }
    // Layout-hint table, index-parallel with the buffer table. The values
    // are untrusted claims here; Model::validate cross-checks each one
    // against the real section layout before the model is handed out.
    let mut layout_hints = Vec::with_capacity(buffer_count);
    for _ in 0..buffer_count {
        let align = r.u32()?;
        let row_stride = r.u32()?;
        layout_hints.push(BufferLayout { align, row_stride });
    }
    // Section discipline: every buffer lies past the header, at its
    // guaranteed alignment, inside the blob, ascending and non-overlapping.
    // A hostile blob violating any of these is rejected before a single
    // view is created.
    let header_end = r.pos;
    let mut prev_end = header_end;
    for &(off, len) in &entries {
        if off % BUFFER_ALIGN != 0 {
            return Err(NnError::MalformedModel("misaligned buffer section"));
        }
        if off < prev_end {
            return Err(NnError::MalformedModel("overlapping buffer sections"));
        }
        let end = off
            .checked_add(len)
            .ok_or(NnError::MalformedModel("buffer section overflow"))?;
        if end > data.len() {
            return Err(NnError::MalformedModel("buffer section out of bounds"));
        }
        prev_end = end;
    }
    let backing = buf.share();
    let buffers = entries
        .into_iter()
        .map(|(off, len)| ByteView::window(std::sync::Arc::clone(&backing), off, len))
        .collect();

    let model = Model {
        tensors,
        buffers,
        layout_hints,
        ops,
        input,
        output,
        labels,
        description,
    };
    // Full validation in place, so a tampered blob cannot produce a model
    // violating kernel preconditions (including layout hints that
    // contradict the actual section layout).
    model.validate()?;
    Ok(model)
}

/// The legacy v1 copying decoder, kept byte-for-byte compatible with blobs
/// produced by [`serialize_v1`] (and by every release before v2).
fn deserialize_v1(data: &[u8]) -> Result<Model> {
    let mut r = Reader {
        buf: Bytes::copy_from_slice(data),
    };

    let magic = r.bytes(4)?;
    if magic != MAGIC {
        return Err(NnError::UnsupportedFormat {
            detail: "bad magic".into(),
        });
    }
    let version = r.u16()?;
    if version != VERSION_V1 {
        return Err(NnError::UnsupportedFormat {
            detail: format!("version {version} unsupported"),
        });
    }

    let description = r.str32()?;
    let labels = parse_labels(&mut r)?;
    let tensors = parse_tensors(&mut r)?;

    let buffer_count = r.u32()? as usize;
    let mut buffers = Vec::with_capacity(buffer_count);
    for _ in 0..buffer_count {
        let len = r.u32()? as usize;
        buffers.push(ByteView::copy_of(&r.bytes(len)?));
    }

    let ops = parse_ops(&mut r, tensors.len())?;
    let input = r.tensor_id(tensors.len())?;
    let output = r.tensor_id(tensors.len())?;

    // v1 predates layout hints; the copying decoder lands every buffer in
    // aligned storage, so the canonical hints hold by construction.
    let layout_hints = canonical_layout_hints(&tensors, &buffers);
    let model = Model {
        tensors,
        buffers,
        layout_hints,
        ops,
        input,
        output,
        labels,
        description,
    };
    model.validate()?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Activation, Model, Op};
    use crate::tensor::DType;

    fn sample_model() -> Model {
        let mut b = Model::builder();
        let input = b.add_activation(
            "in",
            vec![1, 4, 4, 1],
            DType::I8,
            Some(QuantParams {
                scale: 0.5,
                zero_point: -1,
            }),
        );
        let cf = b.add_weight_i8(
            "conv/w",
            vec![2, 3, 3, 1],
            vec![1; 18],
            QuantParams::symmetric(0.1),
        );
        let cb = b.add_weight_i32("conv/b", vec![2], vec![5, -5]);
        let conv = b.add_activation(
            "conv",
            vec![1, 4, 4, 2],
            DType::I8,
            Some(QuantParams {
                scale: 0.25,
                zero_point: 3,
            }),
        );
        b.add_op(Op::Conv2D {
            input,
            filter: cf,
            bias: cb,
            output: conv,
            stride_h: 1,
            stride_w: 1,
            padding: Padding::Same,
            activation: Activation::Relu,
        });
        let fw = b.add_weight_i8(
            "fc/w",
            vec![3, 32],
            vec![2; 96],
            QuantParams::symmetric(0.05),
        );
        let fb = b.add_weight_i32("fc/b", vec![3], vec![0, 1, 2]);
        let fc = b.add_activation(
            "logits",
            vec![1, 3],
            DType::I8,
            Some(QuantParams {
                scale: 1.0,
                zero_point: 0,
            }),
        );
        b.add_op(Op::FullyConnected {
            input: conv,
            filter: fw,
            bias: fb,
            output: fc,
            activation: Activation::None,
        });
        let probs = b.add_activation(
            "probs",
            vec![1, 3],
            DType::I8,
            Some(QuantParams {
                scale: 1.0 / 256.0,
                zero_point: -128,
            }),
        );
        b.add_op(Op::Softmax {
            input: fc,
            output: probs,
        });
        b.set_input(input);
        b.set_output(probs);
        b.set_labels(["a", "b", "c"]);
        b.set_description("format test model");
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_model() {
        let model = sample_model();
        let bytes = serialize(&model);
        let restored = deserialize(&bytes).unwrap();
        assert_eq!(restored, model);
    }

    #[test]
    fn v1_roundtrip_preserves_model() {
        let model = sample_model();
        let bytes = serialize_v1(&model);
        assert_eq!(u16::from_le_bytes([bytes[4], bytes[5]]), VERSION_V1);
        let restored = deserialize(&bytes).unwrap();
        assert_eq!(restored, model);
        // The shared entry point also dispatches v1 images.
        let via_shared = deserialize_shared(ModelBuf::copy_from_slice(&bytes)).unwrap();
        assert_eq!(via_shared, model);
    }

    #[test]
    fn v2_shared_load_borrows_the_image() {
        let model = sample_model();
        let image = ModelBuf::copy_from_slice(&serialize(&model));
        let a = deserialize_shared(image.clone()).unwrap();
        let b = deserialize_shared(image.clone()).unwrap();
        assert_eq!(a, model);
        // Two loads from one image share storage; a v1 load does not.
        assert!(a.shares_storage_with(&b));
        assert!(!a.shares_storage_with(&model));
        // The borrowed weight bytes physically live inside the image.
        let image_range = image.as_slice().as_ptr_range();
        let weights = a.weight_data(crate::tensor::TensorId(1)).unwrap().unwrap();
        assert!(image_range.contains(&weights.as_ptr()));
    }

    #[test]
    fn v2_buffer_sections_are_aligned() {
        let bytes = serialize(&sample_model());
        let image = ModelBuf::copy_from_slice(&bytes);
        let model = deserialize_shared(image.clone()).unwrap();
        for id in [1usize, 2, 4, 5] {
            // conv/w, conv/b, fc/w, fc/b in construction order.
            let data = model
                .weight_data(crate::tensor::TensorId(id))
                .unwrap()
                .unwrap();
            assert_eq!(
                data.as_ptr() as usize % BUFFER_ALIGN,
                0,
                "tensor {id} section misaligned"
            );
        }
    }

    #[test]
    fn roundtrip_preserves_inference_behaviour() {
        use crate::interpreter::Interpreter;
        let model = sample_model();
        let input: Vec<i8> = (0..16).map(|i| (i * 3 - 20) as i8).collect();
        let mut reference = Interpreter::new(model.clone()).unwrap();
        reference.invoke(&input).unwrap();
        let expected = reference.output_quantized().unwrap().to_vec();
        for blob in [serialize(&model), serialize_v1(&model)] {
            let restored = deserialize(&blob).unwrap();
            let mut interp = Interpreter::new(restored).unwrap();
            interp.invoke(&input).unwrap();
            assert_eq!(interp.output_quantized().unwrap(), expected.as_slice());
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = serialize(&sample_model());
        bytes[0] = b'X';
        assert!(matches!(
            deserialize(&bytes),
            Err(NnError::UnsupportedFormat { .. })
        ));
    }

    #[test]
    fn bad_version_rejected() {
        for serialized in [serialize(&sample_model()), serialize_v1(&sample_model())] {
            let mut bytes = serialized;
            bytes[4] = 99;
            assert!(matches!(
                deserialize(&bytes),
                Err(NnError::UnsupportedFormat { .. })
            ));
        }
    }

    #[test]
    fn truncation_rejected_everywhere() {
        for bytes in [serialize(&sample_model()), serialize_v1(&sample_model())] {
            // Every strict prefix must fail cleanly, never panic.
            for len in 0..bytes.len() {
                assert!(
                    deserialize(&bytes[..len]).is_err(),
                    "prefix of {len} bytes parsed"
                );
            }
        }
    }

    /// Locates the v2 buffer table: scan for the count value `n` followed
    /// by n entries whose offsets are all 64-aligned and in-bounds. (The
    /// layout-hint table follows immediately after the located table.)
    fn locate_buffer_table(bytes: &[u8], n: usize) -> usize {
        let mut found = None;
        for pos in 10..bytes.len().saturating_sub(4 + 8 * n) {
            let count = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            if count != n {
                continue;
            }
            let ok = (0..n).all(|i| {
                let p = pos + 4 + 8 * i;
                let off = u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap()) as usize;
                off.is_multiple_of(BUFFER_ALIGN) && off >= pos && off < bytes.len()
            });
            if ok {
                found = Some(pos);
                break;
            }
        }
        found.expect("buffer table located")
    }

    #[test]
    fn misaligned_or_overlapping_v2_sections_rejected() {
        let bytes = serialize(&sample_model());
        let model = sample_model();
        let n = model.buffers.len();
        let first_section = locate_buffer_table(&bytes, n);
        // Misaligned offset.
        let mut bad = bytes.clone();
        let p = first_section + 4;
        let off = u32::from_le_bytes(bad[p..p + 4].try_into().unwrap());
        bad[p..p + 4].copy_from_slice(&(off + 1).to_le_bytes());
        assert!(matches!(
            deserialize(&bad),
            Err(NnError::MalformedModel(_) | NnError::BufferSizeMismatch { .. })
        ));
        // Out-of-bounds section.
        let mut bad = bytes.clone();
        bad[p..p + 4].copy_from_slice(&(u32::MAX - 63).to_le_bytes());
        assert!(deserialize(&bad).is_err());
        // Overlapping sections (second offset rewound onto the first).
        if n >= 2 {
            let mut bad = bytes.clone();
            let p2 = first_section + 4 + 8;
            bad[p2..p2 + 4].copy_from_slice(&off.to_le_bytes());
            assert!(deserialize(&bad).is_err());
        }
    }

    #[test]
    fn hostile_layout_hints_rejected() {
        let bytes = serialize(&sample_model());
        let model = sample_model();
        let n = model.buffers.len();
        let hints = locate_buffer_table(&bytes, n) + 4 + 8 * n;

        // The untampered blob loads, and carries the canonical hints.
        let loaded = deserialize(&bytes).unwrap();
        assert_eq!(loaded.layout_hints().len(), n);
        assert!(loaded
            .layout_hints()
            .iter()
            .all(|h| h.align as usize == BUFFER_ALIGN));

        // Alignment claims the layout cannot honor: zero, non-power-of-two,
        // and stronger than the format's 64-byte section guarantee.
        for align in [0u32, 3, 48, 128] {
            let mut bad = bytes.clone();
            bad[hints..hints + 4].copy_from_slice(&align.to_le_bytes());
            assert!(
                matches!(deserialize(&bad), Err(NnError::MalformedModel(_))),
                "alignment hint {align} accepted"
            );
        }

        // A row stride contradicting the owning tensor's shape (off by one
        // byte, and wildly out of range) must be rejected, for every
        // buffer's hint entry.
        for i in 0..n {
            let p = hints + 8 * i + 4;
            let stride = u32::from_le_bytes(bytes[p..p + 4].try_into().unwrap());
            for bad_stride in [stride + 1, stride.wrapping_sub(1), u32::MAX] {
                let mut bad = bytes.clone();
                bad[p..p + 4].copy_from_slice(&bad_stride.to_le_bytes());
                assert!(
                    matches!(deserialize(&bad), Err(NnError::MalformedModel(_))),
                    "row stride {bad_stride} for buffer {i} accepted (real: {stride})"
                );
            }
        }
    }

    #[test]
    fn wrong_total_length_rejected() {
        let mut bytes = serialize(&sample_model());
        let stored = u32::from_le_bytes(bytes[6..10].try_into().unwrap());
        bytes[6..10].copy_from_slice(&(stored + 1).to_le_bytes());
        assert!(matches!(
            deserialize(&bytes),
            Err(NnError::MalformedModel(_))
        ));
    }

    #[test]
    fn out_of_range_tensor_id_rejected() {
        let model = sample_model();
        let mut bytes = serialize_v1(&model);
        // In v1 the last 8 bytes are input/output ids; corrupt output id.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(deserialize(&bytes).is_err());
    }

    #[test]
    fn size_matches_weights_plus_overhead() {
        let model = sample_model();
        for bytes in [serialize(&model), serialize_v1(&model)] {
            assert!(bytes.len() >= model.weight_bytes());
            // Overhead (metadata + v2 alignment padding) stays modest.
            assert!(bytes.len() < model.weight_bytes() + 1024);
        }
    }
}
