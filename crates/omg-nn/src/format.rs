//! The compact binary model format ("OMGM").
//!
//! Plays the role of the `.tflite` flatbuffer in the paper's pipeline: the
//! trainer exports this blob, the vendor encrypts it (Fig. 2 step ③), and
//! the enclave deserializes it after decryption (step ⑥). The format is
//! little-endian throughout with explicit length prefixes and strict bounds
//! checking on parse.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::error::{NnError, Result};
use crate::model::{Activation, Model, Op, Padding};
use crate::quantize::QuantParams;
use crate::tensor::{DType, TensorId, TensorInfo};

/// Magic bytes at the start of every serialized model.
pub const MAGIC: &[u8; 4] = b"OMGM";
/// Current format version.
pub const VERSION: u16 = 1;

/// Serializes a model to bytes.
///
/// # Examples
///
/// ```
/// # use omg_nn::model::{Activation, Model, Op};
/// # use omg_nn::quantize::QuantParams;
/// # use omg_nn::tensor::DType;
/// use omg_nn::format::{serialize, deserialize};
///
/// # let mut b = Model::builder();
/// # let input = b.add_activation("in", vec![1, 4], DType::I8,
/// #     Some(QuantParams { scale: 0.5, zero_point: 0 }));
/// # let w = b.add_weight_i8("w", vec![2, 4], vec![1i8; 8], QuantParams::symmetric(0.25));
/// # let bias = b.add_weight_i32("b", vec![2], vec![0i32; 2]);
/// # let out = b.add_activation("out", vec![1, 2], DType::I8,
/// #     Some(QuantParams { scale: 1.0, zero_point: 0 }));
/// # b.add_op(Op::FullyConnected { input, filter: w, bias, output: out, activation: Activation::None });
/// # b.set_input(input);
/// # b.set_output(out);
/// # let model = b.build()?;
/// let bytes = serialize(&model);
/// let restored = deserialize(&bytes)?;
/// assert_eq!(restored, model);
/// # Ok::<(), omg_nn::NnError>(())
/// ```
pub fn serialize(model: &Model) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(model.weight_bytes() + 1024);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);

    put_str32(&mut buf, &model.description);

    buf.put_u16_le(model.labels.len() as u16);
    for label in &model.labels {
        put_str16(&mut buf, label);
    }

    buf.put_u32_le(model.tensors.len() as u32);
    for t in &model.tensors {
        put_str16(&mut buf, t.name());
        buf.put_u8(t.dtype().tag());
        match t.quant() {
            Some(q) => {
                buf.put_u8(1);
                buf.put_f32_le(q.scale);
                buf.put_i32_le(q.zero_point);
            }
            None => buf.put_u8(0),
        }
        buf.put_u32_le(t.buffer().map_or(u32::MAX, |b| b as u32));
        buf.put_u8(t.shape().len() as u8);
        for &d in t.shape() {
            buf.put_u32_le(d as u32);
        }
    }

    buf.put_u32_le(model.buffers.len() as u32);
    for b in &model.buffers {
        buf.put_u32_le(b.len() as u32);
        buf.put_slice(b);
    }

    buf.put_u32_le(model.ops.len() as u32);
    for op in &model.ops {
        put_op(&mut buf, op);
    }

    buf.put_u32_le(model.input.index() as u32);
    buf.put_u32_le(model.output.index() as u32);
    buf.to_vec()
}

fn put_str16(buf: &mut BytesMut, s: &str) {
    buf.put_u16_le(s.len() as u16);
    buf.put_slice(s.as_bytes());
}

fn put_str32(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_op(buf: &mut BytesMut, op: &Op) {
    match *op {
        Op::Conv2D {
            input,
            filter,
            bias,
            output,
            stride_h,
            stride_w,
            padding,
            activation,
        } => {
            buf.put_u8(0);
            for id in [input, filter, bias, output] {
                buf.put_u32_le(id.index() as u32);
            }
            buf.put_u16_le(stride_h as u16);
            buf.put_u16_le(stride_w as u16);
            buf.put_u8(padding.tag());
            buf.put_u8(activation.tag());
        }
        Op::DepthwiseConv2D {
            input,
            filter,
            bias,
            output,
            stride_h,
            stride_w,
            padding,
            activation,
            depth_multiplier,
        } => {
            buf.put_u8(1);
            for id in [input, filter, bias, output] {
                buf.put_u32_le(id.index() as u32);
            }
            buf.put_u16_le(stride_h as u16);
            buf.put_u16_le(stride_w as u16);
            buf.put_u8(padding.tag());
            buf.put_u8(activation.tag());
            buf.put_u16_le(depth_multiplier as u16);
        }
        Op::FullyConnected {
            input,
            filter,
            bias,
            output,
            activation,
        } => {
            buf.put_u8(2);
            for id in [input, filter, bias, output] {
                buf.put_u32_le(id.index() as u32);
            }
            buf.put_u8(activation.tag());
        }
        Op::AveragePool2D {
            input,
            output,
            filter_h,
            filter_w,
            stride_h,
            stride_w,
            padding,
        } => {
            buf.put_u8(3);
            buf.put_u32_le(input.index() as u32);
            buf.put_u32_le(output.index() as u32);
            buf.put_u16_le(filter_h as u16);
            buf.put_u16_le(filter_w as u16);
            buf.put_u16_le(stride_h as u16);
            buf.put_u16_le(stride_w as u16);
            buf.put_u8(padding.tag());
        }
        Op::MaxPool2D {
            input,
            output,
            filter_h,
            filter_w,
            stride_h,
            stride_w,
            padding,
        } => {
            buf.put_u8(4);
            buf.put_u32_le(input.index() as u32);
            buf.put_u32_le(output.index() as u32);
            buf.put_u16_le(filter_h as u16);
            buf.put_u16_le(filter_w as u16);
            buf.put_u16_le(stride_h as u16);
            buf.put_u16_le(stride_w as u16);
            buf.put_u8(padding.tag());
        }
        Op::Softmax { input, output } => {
            buf.put_u8(5);
            buf.put_u32_le(input.index() as u32);
            buf.put_u32_le(output.index() as u32);
        }
        Op::Reshape { input, output } => {
            buf.put_u8(6);
            buf.put_u32_le(input.index() as u32);
            buf.put_u32_le(output.index() as u32);
        }
    }
}

/// Bounds-checked reader over the serialized form.
struct Reader {
    buf: Bytes,
}

impl Reader {
    fn need(&self, n: usize) -> Result<()> {
        if self.buf.remaining() < n {
            Err(NnError::MalformedModel("unexpected end of model data"))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u16(&mut self) -> Result<u16> {
        self.need(2)?;
        Ok(self.buf.get_u16_le())
    }

    fn u32(&mut self) -> Result<u32> {
        self.need(4)?;
        Ok(self.buf.get_u32_le())
    }

    fn i32(&mut self) -> Result<i32> {
        self.need(4)?;
        Ok(self.buf.get_i32_le())
    }

    fn f32(&mut self) -> Result<f32> {
        self.need(4)?;
        Ok(self.buf.get_f32_le())
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>> {
        self.need(n)?;
        let mut out = vec![0u8; n];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    fn str16(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw).map_err(|_| NnError::MalformedModel("invalid utf-8 string"))
    }

    fn str32(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let raw = self.bytes(len)?;
        String::from_utf8(raw).map_err(|_| NnError::MalformedModel("invalid utf-8 string"))
    }

    fn tensor_id(&mut self, tensor_count: usize) -> Result<TensorId> {
        let idx = self.u32()? as usize;
        if idx >= tensor_count {
            return Err(NnError::MalformedModel("tensor id out of range"));
        }
        Ok(TensorId(idx))
    }
}

/// Deserializes a model, validating structure and shapes.
///
/// # Errors
///
/// [`NnError::UnsupportedFormat`] on magic/version mismatch,
/// [`NnError::MalformedModel`] on truncation or inconsistent ids, plus any
/// model validation error.
pub fn deserialize(data: &[u8]) -> Result<Model> {
    let mut r = Reader {
        buf: Bytes::copy_from_slice(data),
    };

    let magic = r.bytes(4)?;
    if magic != MAGIC {
        return Err(NnError::UnsupportedFormat {
            detail: "bad magic".into(),
        });
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(NnError::UnsupportedFormat {
            detail: format!("version {version} unsupported"),
        });
    }

    let description = r.str32()?;
    let label_count = r.u16()? as usize;
    let mut labels = Vec::with_capacity(label_count);
    for _ in 0..label_count {
        labels.push(r.str16()?.into());
    }

    let tensor_count = r.u32()? as usize;
    if tensor_count > 1_000_000 {
        return Err(NnError::MalformedModel("absurd tensor count"));
    }
    let mut tensors = Vec::with_capacity(tensor_count);
    for _ in 0..tensor_count {
        let name = r.str16()?;
        let dtype = DType::from_tag(r.u8()?).ok_or(NnError::MalformedModel("unknown dtype tag"))?;
        let quant = match r.u8()? {
            0 => None,
            1 => Some(QuantParams {
                scale: r.f32()?,
                zero_point: r.i32()?,
            }),
            _ => return Err(NnError::MalformedModel("bad quant flag")),
        };
        let buffer_raw = r.u32()?;
        let buffer = if buffer_raw == u32::MAX {
            None
        } else {
            Some(buffer_raw as usize)
        };
        let rank = r.u8()? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(r.u32()? as usize);
        }
        tensors.push(TensorInfo::new(name, shape, dtype, quant, buffer));
    }

    let buffer_count = r.u32()? as usize;
    let mut buffers = Vec::with_capacity(buffer_count);
    for _ in 0..buffer_count {
        let len = r.u32()? as usize;
        buffers.push(r.bytes(len)?);
    }

    let op_count = r.u32()? as usize;
    let mut ops = Vec::with_capacity(op_count);
    for _ in 0..op_count {
        let opcode = r.u8()?;
        let op = match opcode {
            0 | 1 => {
                let input = r.tensor_id(tensor_count)?;
                let filter = r.tensor_id(tensor_count)?;
                let bias = r.tensor_id(tensor_count)?;
                let output = r.tensor_id(tensor_count)?;
                let stride_h = r.u16()? as usize;
                let stride_w = r.u16()? as usize;
                let padding =
                    Padding::from_tag(r.u8()?).ok_or(NnError::MalformedModel("bad padding tag"))?;
                let activation = Activation::from_tag(r.u8()?)
                    .ok_or(NnError::MalformedModel("bad activation tag"))?;
                if opcode == 0 {
                    Op::Conv2D {
                        input,
                        filter,
                        bias,
                        output,
                        stride_h,
                        stride_w,
                        padding,
                        activation,
                    }
                } else {
                    let depth_multiplier = r.u16()? as usize;
                    Op::DepthwiseConv2D {
                        input,
                        filter,
                        bias,
                        output,
                        stride_h,
                        stride_w,
                        padding,
                        activation,
                        depth_multiplier,
                    }
                }
            }
            2 => {
                let input = r.tensor_id(tensor_count)?;
                let filter = r.tensor_id(tensor_count)?;
                let bias = r.tensor_id(tensor_count)?;
                let output = r.tensor_id(tensor_count)?;
                let activation = Activation::from_tag(r.u8()?)
                    .ok_or(NnError::MalformedModel("bad activation tag"))?;
                Op::FullyConnected {
                    input,
                    filter,
                    bias,
                    output,
                    activation,
                }
            }
            3 | 4 => {
                let input = r.tensor_id(tensor_count)?;
                let output = r.tensor_id(tensor_count)?;
                let filter_h = r.u16()? as usize;
                let filter_w = r.u16()? as usize;
                let stride_h = r.u16()? as usize;
                let stride_w = r.u16()? as usize;
                let padding =
                    Padding::from_tag(r.u8()?).ok_or(NnError::MalformedModel("bad padding tag"))?;
                if opcode == 3 {
                    Op::AveragePool2D {
                        input,
                        output,
                        filter_h,
                        filter_w,
                        stride_h,
                        stride_w,
                        padding,
                    }
                } else {
                    Op::MaxPool2D {
                        input,
                        output,
                        filter_h,
                        filter_w,
                        stride_h,
                        stride_w,
                        padding,
                    }
                }
            }
            5 => Op::Softmax {
                input: r.tensor_id(tensor_count)?,
                output: r.tensor_id(tensor_count)?,
            },
            6 => Op::Reshape {
                input: r.tensor_id(tensor_count)?,
                output: r.tensor_id(tensor_count)?,
            },
            _ => return Err(NnError::MalformedModel("unknown opcode")),
        };
        ops.push(op);
    }

    let input = r.tensor_id(tensor_count)?;
    let output = r.tensor_id(tensor_count)?;

    let model = Model {
        tensors,
        buffers,
        ops,
        input,
        output,
        labels,
        description,
    };
    // Full validation in place, so a tampered blob cannot produce a model
    // violating kernel preconditions.
    model.validate()?;
    Ok(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Activation, Model, Op};
    use crate::tensor::DType;

    fn sample_model() -> Model {
        let mut b = Model::builder();
        let input = b.add_activation(
            "in",
            vec![1, 4, 4, 1],
            DType::I8,
            Some(QuantParams {
                scale: 0.5,
                zero_point: -1,
            }),
        );
        let cf = b.add_weight_i8(
            "conv/w",
            vec![2, 3, 3, 1],
            vec![1; 18],
            QuantParams::symmetric(0.1),
        );
        let cb = b.add_weight_i32("conv/b", vec![2], vec![5, -5]);
        let conv = b.add_activation(
            "conv",
            vec![1, 4, 4, 2],
            DType::I8,
            Some(QuantParams {
                scale: 0.25,
                zero_point: 3,
            }),
        );
        b.add_op(Op::Conv2D {
            input,
            filter: cf,
            bias: cb,
            output: conv,
            stride_h: 1,
            stride_w: 1,
            padding: Padding::Same,
            activation: Activation::Relu,
        });
        let fw = b.add_weight_i8(
            "fc/w",
            vec![3, 32],
            vec![2; 96],
            QuantParams::symmetric(0.05),
        );
        let fb = b.add_weight_i32("fc/b", vec![3], vec![0, 1, 2]);
        let fc = b.add_activation(
            "logits",
            vec![1, 3],
            DType::I8,
            Some(QuantParams {
                scale: 1.0,
                zero_point: 0,
            }),
        );
        b.add_op(Op::FullyConnected {
            input: conv,
            filter: fw,
            bias: fb,
            output: fc,
            activation: Activation::None,
        });
        let probs = b.add_activation(
            "probs",
            vec![1, 3],
            DType::I8,
            Some(QuantParams {
                scale: 1.0 / 256.0,
                zero_point: -128,
            }),
        );
        b.add_op(Op::Softmax {
            input: fc,
            output: probs,
        });
        b.set_input(input);
        b.set_output(probs);
        b.set_labels(["a", "b", "c"]);
        b.set_description("format test model");
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_preserves_model() {
        let model = sample_model();
        let bytes = serialize(&model);
        let restored = deserialize(&bytes).unwrap();
        assert_eq!(restored, model);
    }

    #[test]
    fn roundtrip_preserves_inference_behaviour() {
        use crate::interpreter::Interpreter;
        let model = sample_model();
        let bytes = serialize(&model);
        let restored = deserialize(&bytes).unwrap();
        let input: Vec<i8> = (0..16).map(|i| (i * 3 - 20) as i8).collect();
        let mut a = Interpreter::new(model).unwrap();
        let mut b = Interpreter::new(restored).unwrap();
        a.invoke(&input).unwrap();
        b.invoke(&input).unwrap();
        assert_eq!(a.output_quantized().unwrap(), b.output_quantized().unwrap());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = serialize(&sample_model());
        bytes[0] = b'X';
        assert!(matches!(
            deserialize(&bytes),
            Err(NnError::UnsupportedFormat { .. })
        ));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = serialize(&sample_model());
        bytes[4] = 99;
        assert!(matches!(
            deserialize(&bytes),
            Err(NnError::UnsupportedFormat { .. })
        ));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = serialize(&sample_model());
        // Every strict prefix must fail cleanly, never panic.
        for len in 0..bytes.len() {
            assert!(
                deserialize(&bytes[..len]).is_err(),
                "prefix of {len} bytes parsed"
            );
        }
    }

    #[test]
    fn out_of_range_tensor_id_rejected() {
        let model = sample_model();
        let mut bytes = serialize(&model);
        // The last 8 bytes are input/output ids; corrupt output id.
        let n = bytes.len();
        bytes[n - 4..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(deserialize(&bytes).is_err());
    }

    #[test]
    fn size_matches_weights_plus_overhead() {
        let model = sample_model();
        let bytes = serialize(&model);
        assert!(bytes.len() >= model.weight_bytes());
        // Overhead stays modest (well under 1 KiB for this model).
        assert!(bytes.len() < model.weight_bytes() + 1024);
    }
}
