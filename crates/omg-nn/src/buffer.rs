//! Aligned model storage for the zero-copy load path.
//!
//! OMGM v2 blobs place every weight and bias section at a 64-byte-aligned
//! offset, so the deserializer can hand out typed views straight into the
//! decrypted byte image instead of copying each tensor out. That only
//! works if the image itself sits at an aligned base address:
//!
//! * [`AlignedBytes`] is an owned byte buffer whose base address is
//!   guaranteed to be 64-byte aligned (≥ the natural alignment of every
//!   dtype in the format). The sealed-storage decrypt path writes the
//!   plaintext model directly into one of these — a single allocation for
//!   the whole model image.
//! * [`ModelBuf`] wraps the image in an [`Arc`] so many models,
//!   interpreters, and provisioned devices can share one immutable
//!   decrypted copy; cloning is a refcount bump.
//! * [`ByteView`](crate::model::Model) buffers (crate-internal) are
//!   `(Arc<AlignedBytes>, offset, len)` triples — the per-tensor windows a
//!   [`crate::model::Model`] holds.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;
use std::sync::Arc;

/// Base-address alignment of every [`AlignedBytes`] allocation, and the
/// section alignment OMGM v2 guarantees for buffer offsets. 64 covers the
/// natural alignment of all format dtypes (i8/i32/f32) with cache-line
/// headroom.
pub const BUFFER_ALIGN: usize = 64;

/// An owned byte buffer with a 64-byte-aligned base address.
pub struct AlignedBytes {
    ptr: NonNull<u8>,
    len: usize,
}

// SAFETY: AlignedBytes is a plain owned byte region with unique access
// through &mut self; it carries no thread affinity.
unsafe impl Send for AlignedBytes {}
unsafe impl Sync for AlignedBytes {}

impl AlignedBytes {
    fn layout(len: usize) -> Layout {
        Layout::from_size_align(len, BUFFER_ALIGN).expect("buffer length overflows layout")
    }

    /// Allocates `len` zeroed bytes at a 64-byte-aligned address.
    pub fn zeroed(len: usize) -> Self {
        if len == 0 {
            return AlignedBytes {
                ptr: NonNull::<u64>::dangling().cast(),
                len: 0,
            };
        }
        let layout = Self::layout(len);
        // SAFETY: layout has nonzero size (len > 0 checked above).
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(ptr) = NonNull::new(raw) else {
            handle_alloc_error(layout);
        };
        AlignedBytes { ptr, len }
    }

    /// Allocates an aligned copy of `bytes`.
    pub fn copy_from(bytes: &[u8]) -> Self {
        let mut out = Self::zeroed(bytes.len());
        out.copy_from_slice(bytes);
        out
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl Deref for AlignedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live allocation owned by self (or a
        // dangling pointer with len 0, valid for empty slices).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl DerefMut for AlignedBytes {
    fn deref_mut(&mut self) -> &mut [u8] {
        // SAFETY: as above; &mut self guarantees exclusive access.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBytes {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: allocated in `zeroed` with this exact layout.
            unsafe { dealloc(self.ptr.as_ptr(), Self::layout(self.len)) };
        }
    }
}

impl Clone for AlignedBytes {
    fn clone(&self) -> Self {
        Self::copy_from(self)
    }
}

impl std::fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBytes({} bytes @ {:p})", self.len, self.ptr)
    }
}

impl PartialEq for AlignedBytes {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

/// A shareable, immutable, aligned model image — the decrypted OMGM blob.
///
/// Cloning is a refcount bump: N provisioned devices (or interpreters)
/// loading the same model hold views into one allocation instead of N
/// copies.
#[derive(Clone, Debug)]
pub struct ModelBuf {
    data: Arc<AlignedBytes>,
}

impl ModelBuf {
    /// Wraps an aligned image, freezing it for sharing.
    pub fn from_aligned(data: AlignedBytes) -> Self {
        ModelBuf {
            data: Arc::new(data),
        }
    }

    /// Allocates an aligned copy of `bytes` (the one copy a
    /// `&[u8]`-sourced v2 load pays; the sealed-storage path decrypts
    /// straight into [`AlignedBytes`] and pays none).
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Self::from_aligned(AlignedBytes::copy_from(bytes))
    }

    /// The whole image.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Image length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Whether two handles share one underlying allocation.
    pub fn ptr_eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    pub(crate) fn share(&self) -> Arc<AlignedBytes> {
        Arc::clone(&self.data)
    }
}

impl PartialEq for ModelBuf {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || self.as_slice() == other.as_slice()
    }
}

/// A window into shared aligned storage: one model buffer (weight or bias
/// tensor data). Cloning bumps the refcount of the backing image.
#[derive(Clone)]
pub(crate) struct ByteView {
    data: Arc<AlignedBytes>,
    off: usize,
    len: usize,
}

impl ByteView {
    /// A view owning its whole (freshly allocated, aligned) storage.
    pub(crate) fn owned(bytes: AlignedBytes) -> Self {
        let len = bytes.len();
        ByteView {
            data: Arc::new(bytes),
            off: 0,
            len,
        }
    }

    /// An aligned copy of `bytes` as a standalone view.
    pub(crate) fn copy_of(bytes: &[u8]) -> Self {
        Self::owned(AlignedBytes::copy_from(bytes))
    }

    /// A window into a shared image. Caller must have bounds-checked
    /// `off + len <= data.len()` (the v2 parser does).
    pub(crate) fn window(data: Arc<AlignedBytes>, off: usize, len: usize) -> Self {
        debug_assert!(off.checked_add(len).is_some_and(|end| end <= data.len()));
        ByteView { data, off, len }
    }

    pub(crate) fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }

    /// Whether two views are backed by the same allocation (regardless of
    /// window) — the "one shared decrypted buffer" provisioning property.
    pub(crate) fn same_backing(&self, other: &ByteView) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }
}

impl Deref for ByteView {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for ByteView {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for ByteView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteView({} bytes @ +{})", self.len, self.off)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligned_base_address() {
        for len in [1usize, 7, 64, 65, 4096, 50_000] {
            let b = AlignedBytes::zeroed(len);
            assert_eq!(b.as_ptr() as usize % BUFFER_ALIGN, 0, "len {len}");
            assert_eq!(b.len(), len);
            assert!(b.iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn empty_buffer_is_safe() {
        let b = AlignedBytes::zeroed(0);
        assert!(b.is_empty());
        assert_eq!(&b[..], &[] as &[u8]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn copy_round_trips_and_mutates() {
        let mut b = AlignedBytes::copy_from(&[1, 2, 3, 4]);
        b[2] = 9;
        assert_eq!(&b[..], &[1, 2, 9, 4]);
        let c = b.clone();
        assert_eq!(b, c);
        // Clones are independent allocations.
        assert_ne!(b.as_ptr(), c.as_ptr());
    }

    #[test]
    fn model_buf_sharing_is_by_pointer() {
        let a = ModelBuf::copy_from_slice(&[5u8; 100]);
        let b = a.clone();
        assert!(a.ptr_eq(&b));
        let c = ModelBuf::copy_from_slice(&[5u8; 100]);
        assert!(!a.ptr_eq(&c));
        assert_eq!(a, c, "equal content still compares equal");
    }

    #[test]
    fn byte_view_windows_share_backing() {
        let image = ModelBuf::copy_from_slice(&(0u8..=255).collect::<Vec<_>>());
        let a = ByteView::window(image.share(), 0, 16);
        let b = ByteView::window(image.share(), 64, 32);
        assert!(a.same_backing(&b));
        assert_eq!(&a[..4], &[0, 1, 2, 3]);
        assert_eq!(b[0], 64);
        let solo = ByteView::copy_of(&[0, 1, 2, 3]);
        assert!(!solo.same_backing(&a));
        assert_eq!(solo, ByteView::window(image.share(), 0, 4));
    }
}
