//! Fast int8 kernels: the restructured counterparts of [`crate::kernels`].
//!
//! Same argument structs, same TFLM semantics, **bit-exact outputs** — the
//! scalar reference kernels remain the correctness oracle and
//! `omg-nn/tests/kernel_equivalence.rs` proves equality by differential
//! property testing. What changes is the loop structure:
//!
//! * [`conv2d`] lowers onto the blocked GEMM in [`crate::gemm`] via an
//!   im2col panel (carved from the interpreter arena — no allocation);
//! * [`depthwise_conv2d`], [`average_pool2d`], and [`max_pool2d`] hoist
//!   zero-point offsets and row base pointers out of the window loops,
//!   split the padded border from the interior fast path, and walk
//!   channels in fixed-width vectorizable lanes instead of calling
//!   `idx4` per element;
//! * [`fully_connected`] blocks outputs into four-row panels and runs
//!   them through the dispatched panel dot kernel
//!   ([`crate::arch::KernelVTable::dot_i8_offset_x4`]), so each pass over
//!   the activations feeds four output neurons;
//! * [`softmax`] memoizes `exp` per distinct quantized value (an i8 input
//!   has at most 256), instead of recomputing it twice per element.
//!
//! The dot-product-heavy kernels ([`conv2d`], [`fully_connected`]) come
//! in `_with` variants taking an explicit [`crate::arch::KernelVTable`]
//! dispatch tier; the plain names use the best tier the CPU supports.
//!
//! Everything accumulates in `i32` exactly as the reference does, so
//! reassociating sums into lanes (or SIMD registers, or row-panel
//! threads) cannot change a single output bit; the only float kernel
//! (`softmax`) preserves the reference's operation order per element and
//! is therefore bit-exact too.

use crate::arch::{self, KernelVTable};
use crate::gemm::{conv_uses_im2col, gemm_with, im2col, GemmArgs, LANES};
use crate::kernels::{Conv2DArgs, DepthwiseConv2DArgs, FullyConnectedArgs, Pool2DArgs};
use crate::quantize::FixedMultiplier;

/// int8 2-D convolution via im2col + blocked GEMM, on the best detected
/// dispatch tier. Equivalent to `conv2d_with(arch::detect(), …)`.
///
/// `filter_row_sums` is the per-output-channel `Σ filter` vector
/// ([`crate::gemm::row_sums`]); the filter is constant, so callers
/// precompute it once (the interpreter does so at step-compile time).
/// `im2col_scratch` must hold [`crate::gemm::conv_im2col_len`] bytes (the
/// interpreter plans it into the activation arena; it is empty for
/// 1×1/stride-1/unpadded convs, which read the input in place).
pub fn conv2d(args: Conv2DArgs<'_>, filter_row_sums: &[i32], im2col_scratch: &mut [i8]) {
    conv2d_with(arch::detect(), args, filter_row_sums, im2col_scratch);
}

/// [`conv2d`] with an explicit dispatch tier.
pub fn conv2d_with(
    vt: &'static KernelVTable,
    args: Conv2DArgs<'_>,
    filter_row_sums: &[i32],
    im2col_scratch: &mut [i8],
) {
    let Conv2DArgs {
        input,
        input_shape,
        filter,
        filter_shape,
        bias,
        output,
        output_shape,
        stride,
        pad,
        input_offset,
        output_offset,
        multiplier,
        act_min,
        act_max,
    } = args;
    let [batches, in_h, in_w, in_c] = input_shape;
    let [out_c, k_h, k_w, _] = filter_shape;
    let [_, out_h, out_w, _] = output_shape;
    let k = k_h * k_w * in_c;
    let m = out_h * out_w;
    let use_col = conv_uses_im2col(filter_shape, stride, pad);
    // The zero point: packed padding contributes (zp + input_offset) = 0.
    let pad_value = (-input_offset) as i8;
    for b in 0..batches {
        let in_plane = &input[b * in_h * in_w * in_c..][..in_h * in_w * in_c];
        let out_plane = &mut output[b * m * out_c..][..m * out_c];
        let a: &[i8] = if use_col {
            im2col(
                in_plane,
                in_h,
                in_w,
                in_c,
                k_h,
                k_w,
                stride,
                pad,
                out_h,
                out_w,
                pad_value,
                im2col_scratch,
            );
            im2col_scratch
        } else {
            in_plane
        };
        gemm_with(
            vt,
            GemmArgs {
                a,
                b: filter,
                bias,
                b_row_sums: filter_row_sums,
                out: out_plane,
                m,
                n: out_c,
                k,
                input_offset,
                output_offset,
                multiplier,
                act_min,
                act_max,
            },
        );
    }
}

/// Clipped kernel range along one axis: the `kk` for which
/// `0 <= i0 + kk < limit`, as a `lo..hi` pair within `0..k`.
#[inline]
fn kernel_range(i0: isize, k: usize, limit: usize) -> (usize, usize) {
    let lo = (-i0).clamp(0, k as isize) as usize;
    let hi = (limit as isize - i0).clamp(0, k as isize) as usize;
    (lo, hi.max(lo))
}

/// int8 depthwise convolution with hoisted offsets and channel lanes.
pub fn depthwise_conv2d(args: DepthwiseConv2DArgs<'_>) {
    let DepthwiseConv2DArgs {
        input,
        input_shape,
        filter,
        filter_shape,
        bias,
        output,
        output_shape,
        depth_multiplier,
        stride,
        pad,
        input_offset,
        output_offset,
        multiplier,
        act_min,
        act_max,
    } = args;
    let [batches, in_h, in_w, in_c] = input_shape;
    let [_, k_h, k_w, _] = filter_shape;
    let [_, out_h, out_w, out_c] = output_shape;
    debug_assert_eq!(out_c, in_c * depth_multiplier);
    let (lo, hi) = (i32::from(act_min), i32::from(act_max));
    let in_row_pitch = in_w * in_c;
    let f_row_pitch = k_w * out_c;
    for b in 0..batches {
        let in_plane = &input[b * in_h * in_row_pitch..][..in_h * in_row_pitch];
        for oy in 0..out_h {
            let iy0 = (oy * stride.0) as isize - pad.0 as isize;
            let (ky_lo, ky_hi) = kernel_range(iy0, k_h, in_h);
            for ox in 0..out_w {
                let ix0 = (ox * stride.1) as isize - pad.1 as isize;
                let (kx_lo, kx_hi) = kernel_range(ix0, k_w, in_w);
                let out_px = &mut output[((b * out_h + oy) * out_w + ox) * out_c..][..out_c];
                if depth_multiplier == 1 {
                    dw_pixel_mult1(
                        in_plane,
                        filter,
                        bias,
                        out_px,
                        DwPixel {
                            channels: in_c,
                            iy0,
                            ix0,
                            ky: (ky_lo, ky_hi),
                            kx: (kx_lo, kx_hi),
                            in_row_pitch,
                            f_row_pitch,
                            input_offset,
                            output_offset,
                            multiplier,
                            clamp: (lo, hi),
                        },
                    );
                } else {
                    // The rare general path keeps hoisted row bases but
                    // walks (ic, m) scalar.
                    for ic in 0..in_c {
                        for mch in 0..depth_multiplier {
                            let oc = ic * depth_multiplier + mch;
                            let mut acc = 0i32;
                            for ky in ky_lo..ky_hi {
                                let iy = (iy0 + ky as isize) as usize;
                                let in_row = &in_plane[iy * in_row_pitch..][..in_row_pitch];
                                let f_row = &filter[ky * f_row_pitch..][..f_row_pitch];
                                for kx in kx_lo..kx_hi {
                                    let ix = (ix0 + kx as isize) as usize;
                                    let iv = i32::from(in_row[ix * in_c + ic]);
                                    let fv = i32::from(f_row[kx * out_c + oc]);
                                    acc += (iv + input_offset) * fv;
                                }
                            }
                            acc += bias[oc];
                            let scaled = multiplier.apply(acc) + output_offset;
                            out_px[oc] = scaled.clamp(lo, hi) as i8;
                        }
                    }
                }
            }
        }
    }
}

/// Geometry and quantization context for one depthwise output pixel.
struct DwPixel {
    channels: usize,
    iy0: isize,
    ix0: isize,
    ky: (usize, usize),
    kx: (usize, usize),
    in_row_pitch: usize,
    f_row_pitch: usize,
    input_offset: i32,
    output_offset: i32,
    multiplier: FixedMultiplier,
    clamp: (i32, i32),
}

/// One depthwise output pixel at depth multiplier 1: channels are walked
/// in fixed-width lanes so the per-`(ky, kx)` inner loop vectorizes.
fn dw_pixel_mult1(in_plane: &[i8], filter: &[i8], bias: &[i32], out_px: &mut [i8], px: DwPixel) {
    let c = px.channels;
    let mut cb = 0;
    while cb < c {
        let width = LANES.min(c - cb);
        let mut acc = [0i32; LANES];
        for ky in px.ky.0..px.ky.1 {
            let iy = (px.iy0 + ky as isize) as usize;
            let in_row = &in_plane[iy * px.in_row_pitch..][..px.in_row_pitch];
            let f_row = &filter[ky * px.f_row_pitch..][..px.f_row_pitch];
            for kx in px.kx.0..px.kx.1 {
                let ix = (px.ix0 + kx as isize) as usize;
                let iv = &in_row[ix * c + cb..][..width];
                let fv = &f_row[kx * c + cb..][..width];
                if width == LANES {
                    for l in 0..LANES {
                        acc[l] += (i32::from(iv[l]) + px.input_offset) * i32::from(fv[l]);
                    }
                } else {
                    for l in 0..width {
                        acc[l] += (i32::from(iv[l]) + px.input_offset) * i32::from(fv[l]);
                    }
                }
            }
        }
        for l in 0..width {
            let with_bias = acc[l] + bias[cb + l];
            let scaled = px.multiplier.apply(with_bias) + px.output_offset;
            out_px[cb + l] = scaled.clamp(px.clamp.0, px.clamp.1) as i8;
        }
        cb += LANES;
    }
}

/// int8 fully connected layer on the best detected dispatch tier.
/// Equivalent to `fully_connected_with(arch::detect(), args)`.
pub fn fully_connected(args: FullyConnectedArgs<'_>) {
    fully_connected_with(arch::detect(), args);
}

/// [`fully_connected`] with an explicit dispatch tier.
///
/// Outputs are blocked into panels of four: each panel makes **one**
/// pass over the activation row through
/// [`KernelVTable::dot_i8_offset_x4`], which widens and offsets the
/// activations once and dots them against four weight rows — quadrupling
/// the arithmetic per activation byte loaded. This is what lifts the
/// layer past the memory-bound ~1.2× of the old one-row-at-a-time loop.
/// Leftover outputs (`out_features % 4`) take the single-row dot.
pub fn fully_connected_with(vt: &'static KernelVTable, args: FullyConnectedArgs<'_>) {
    let FullyConnectedArgs {
        input,
        filter,
        bias,
        output,
        in_features,
        out_features,
        input_offset,
        output_offset,
        multiplier,
        act_min,
        act_max,
    } = args;
    let (lo, hi) = (i32::from(act_min), i32::from(act_max));
    let batches = input.len() / in_features;
    for b in 0..batches {
        let a_row = &input[b * in_features..][..in_features];
        let out_row = &mut output[b * out_features..][..out_features];
        let mut o = 0;
        while o + 4 <= out_features {
            let rows = [
                &filter[o * in_features..][..in_features],
                &filter[(o + 1) * in_features..][..in_features],
                &filter[(o + 2) * in_features..][..in_features],
                &filter[(o + 3) * in_features..][..in_features],
            ];
            let accs = (vt.dot_i8_offset_x4)(a_row, rows, input_offset);
            for (j, acc) in accs.into_iter().enumerate() {
                let scaled = multiplier.apply(acc + bias[o + j]) + output_offset;
                out_row[o + j] = scaled.clamp(lo, hi) as i8;
            }
            o += 4;
        }
        for o in o..out_features {
            let w_row = &filter[o * in_features..][..in_features];
            let acc = (vt.dot_i8_offset)(a_row, w_row, input_offset) + bias[o];
            let scaled = multiplier.apply(acc) + output_offset;
            out_row[o] = scaled.clamp(lo, hi) as i8;
        }
    }
}

/// int8 average pooling with hoisted window clipping and channel lanes.
pub fn average_pool2d(args: Pool2DArgs<'_>) {
    let Pool2DArgs {
        input,
        input_shape,
        output,
        output_shape,
        filter,
        stride,
        pad,
    } = args;
    let [batches, in_h, in_w, c] = input_shape;
    let [_, out_h, out_w, _] = output_shape;
    let row_pitch = in_w * c;
    for b in 0..batches {
        let in_plane = &input[b * in_h * row_pitch..][..in_h * row_pitch];
        for oy in 0..out_h {
            let iy0 = (oy * stride.0) as isize - pad.0 as isize;
            let (ky_lo, ky_hi) = kernel_range(iy0, filter.0, in_h);
            for ox in 0..out_w {
                let ix0 = (ox * stride.1) as isize - pad.1 as isize;
                let (kx_lo, kx_hi) = kernel_range(ix0, filter.1, in_w);
                let count = ((ky_hi - ky_lo) * (kx_hi - kx_lo)) as i32;
                let out_px = &mut output[((b * out_h + oy) * out_w + ox) * c..][..c];
                let mut cb = 0;
                while cb < c {
                    let width = LANES.min(c - cb);
                    let mut sum = [0i32; LANES];
                    for ky in ky_lo..ky_hi {
                        let iy = (iy0 + ky as isize) as usize;
                        let in_row = &in_plane[iy * row_pitch..][..row_pitch];
                        for kx in kx_lo..kx_hi {
                            let ix = (ix0 + kx as isize) as usize;
                            let iv = &in_row[ix * c + cb..][..width];
                            if width == LANES {
                                for l in 0..LANES {
                                    sum[l] += i32::from(iv[l]);
                                }
                            } else {
                                for l in 0..width {
                                    sum[l] += i32::from(iv[l]);
                                }
                            }
                        }
                    }
                    for l in 0..width {
                        // Round half away from zero, exactly as the
                        // reference (and TFLite) do.
                        let avg = if count > 0 {
                            if sum[l] >= 0 {
                                (sum[l] + count / 2) / count
                            } else {
                                (sum[l] - count / 2) / count
                            }
                        } else {
                            0
                        };
                        out_px[cb + l] = avg.clamp(-128, 127) as i8;
                    }
                    cb += LANES;
                }
            }
        }
    }
}

/// int8 max pooling with hoisted window clipping and channel lanes.
pub fn max_pool2d(args: Pool2DArgs<'_>) {
    let Pool2DArgs {
        input,
        input_shape,
        output,
        output_shape,
        filter,
        stride,
        pad,
    } = args;
    let [batches, in_h, in_w, c] = input_shape;
    let [_, out_h, out_w, _] = output_shape;
    let row_pitch = in_w * c;
    for b in 0..batches {
        let in_plane = &input[b * in_h * row_pitch..][..in_h * row_pitch];
        for oy in 0..out_h {
            let iy0 = (oy * stride.0) as isize - pad.0 as isize;
            let (ky_lo, ky_hi) = kernel_range(iy0, filter.0, in_h);
            for ox in 0..out_w {
                let ix0 = (ox * stride.1) as isize - pad.1 as isize;
                let (kx_lo, kx_hi) = kernel_range(ix0, filter.1, in_w);
                let out_px = &mut output[((b * out_h + oy) * out_w + ox) * c..][..c];
                let mut cb = 0;
                while cb < c {
                    let width = LANES.min(c - cb);
                    let mut best = [i8::MIN; LANES];
                    for ky in ky_lo..ky_hi {
                        let iy = (iy0 + ky as isize) as usize;
                        let in_row = &in_plane[iy * row_pitch..][..row_pitch];
                        for kx in kx_lo..kx_hi {
                            let ix = (ix0 + kx as isize) as usize;
                            let iv = &in_row[ix * c + cb..][..width];
                            if width == LANES {
                                for l in 0..LANES {
                                    best[l] = best[l].max(iv[l]);
                                }
                            } else {
                                for l in 0..width {
                                    best[l] = best[l].max(iv[l]);
                                }
                            }
                        }
                    }
                    out_px[cb..cb + width].copy_from_slice(&best[..width]);
                    cb += LANES;
                }
            }
        }
    }
}

/// int8 softmax with `exp` memoized per distinct quantized value.
///
/// The reference recomputes `exp(scale·(q − zp) − x_max)` twice per
/// element; an i8 input has at most 256 distinct values, and warm serving
/// runs this once per query, so each distinct value's exponential is
/// computed once and looked up thereafter. Every per-element float
/// operation (`x − x_max`, `exp`, `/ sum`, `· 256`, `round`) happens in
/// the reference's exact order on the reference's exact inputs, so the
/// result is bit-identical.
pub fn softmax(input: &[i8], input_scale: f32, input_zp: i32, output: &mut [i8]) {
    debug_assert_eq!(input.len(), output.len());
    let max_q = input.iter().copied().max().unwrap_or(0);
    let x_max = input_scale * (i32::from(max_q) - input_zp) as f32;
    let mut table = [0f32; 256];
    let mut known = [false; 256];
    let mut sum = 0f32;
    for &q in input {
        let idx = (i32::from(q) + 128) as usize;
        if !known[idx] {
            let x = input_scale * (i32::from(q) - input_zp) as f32;
            table[idx] = (x - x_max).exp();
            known[idx] = true;
        }
        sum += table[idx];
    }
    for (o, &q) in output.iter_mut().zip(input.iter()) {
        let p = table[(i32::from(q) + 128) as usize] / sum;
        // q = p / (1/256) - 128, the fixed TFLite output convention.
        let q = (p * 256.0).round() as i32 - 128;
        *o = q.clamp(-128, 127) as i8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels;

    /// Runs the fast conv with locally allocated scratch and row sums
    /// (tests only; the interpreter precomputes row sums per step and
    /// carves the im2col panel from its arena instead).
    pub(crate) fn conv2d_alloc(args: Conv2DArgs<'_>) {
        let im2col_len = crate::gemm::conv_im2col_len(
            args.filter_shape,
            args.output_shape,
            args.stride,
            args.pad,
        );
        let out_c = args.filter_shape[0];
        let k = args.filter_shape[1] * args.filter_shape[2] * args.filter_shape[3];
        let mut sums = vec![0i32; out_c];
        crate::gemm::row_sums(args.filter, out_c, k, &mut sums);
        let mut scratch = vec![0i8; im2col_len];
        conv2d(args, &sums, &mut scratch);
    }

    #[test]
    fn conv_matches_reference_on_padded_strided_case() {
        // 5x4x2 input, 3x2 kernel, stride (2,1), SAME-ish padding (1,0),
        // nonzero zero points: a case touching border and interior paths.
        let input: Vec<i8> = (0..40).map(|i| (i * 7 % 256) as u8 as i8).collect();
        let filter: Vec<i8> = (0..36).map(|i| (i * 5 % 256) as u8 as i8).collect();
        let bias = [17i32, -9, 4];
        let input_shape = [1, 5, 4, 2];
        let filter_shape = [3, 3, 2, 2];
        let output_shape = [1, 3, 3, 3];
        let mult = FixedMultiplier::from_real(0.03).unwrap();
        let mut want = vec![0i8; 27];
        kernels::conv2d(Conv2DArgs {
            input: &input,
            input_shape,
            filter: &filter,
            filter_shape,
            bias: &bias,
            output: &mut want,
            output_shape,
            stride: (2, 1),
            pad: (1, 0),
            input_offset: 11,
            output_offset: -3,
            multiplier: mult,
            act_min: -110,
            act_max: 100,
        });
        let mut got = vec![0i8; 27];
        conv2d_alloc(Conv2DArgs {
            input: &input,
            input_shape,
            filter: &filter,
            filter_shape,
            bias: &bias,
            output: &mut got,
            output_shape,
            stride: (2, 1),
            pad: (1, 0),
            input_offset: 11,
            output_offset: -3,
            multiplier: mult,
            act_min: -110,
            act_max: 100,
        });
        assert_eq!(got, want);
    }

    #[test]
    fn one_by_one_conv_skips_im2col_and_matches() {
        let input: Vec<i8> = (0..48).map(|i| (i * 3 % 256) as u8 as i8).collect();
        let filter: Vec<i8> = (0..12).map(|i| (i % 11) as i8 - 5).collect();
        let bias = [5i32, -5, 0, 9];
        let input_shape = [1, 4, 4, 3];
        let filter_shape = [4, 1, 1, 3];
        let output_shape = [1, 4, 4, 4];
        let mult = FixedMultiplier::from_real(0.11).unwrap();
        let run = |fast: bool| {
            let mut out = vec![0i8; 64];
            let args = Conv2DArgs {
                input: &input,
                input_shape,
                filter: &filter,
                filter_shape,
                bias: &bias,
                output: &mut out,
                output_shape,
                stride: (1, 1),
                pad: (0, 0),
                input_offset: -4,
                output_offset: 2,
                multiplier: mult,
                act_min: -128,
                act_max: 127,
            };
            if fast {
                conv2d_alloc(args);
            } else {
                kernels::conv2d(args);
            }
            out
        };
        assert!(!conv_uses_im2col(filter_shape, (1, 1), (0, 0)));
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn softmax_matches_reference_exactly() {
        let input: Vec<i8> = (0..100).map(|i| ((i * 37) % 256) as u8 as i8).collect();
        let mut want = vec![0i8; 100];
        kernels::softmax(&input, 0.17, 3, &mut want);
        let mut got = vec![0i8; 100];
        softmax(&input, 0.17, 3, &mut got);
        assert_eq!(got, want);
    }
}
