//! Quantized reference kernels with TensorFlow Lite Micro semantics.
//!
//! All kernels take int8 activations with asymmetric zero points, int8
//! symmetric weights, int32 biases, accumulate in int32, and requantize
//! through the gemmlowp fixed-point pipeline (see [`crate::quantize`]).
//! Layouts follow TFLite: activations NHWC, convolution filters OHWI.
//!
//! These scalar loops are the **correctness oracle** for the fast kernel
//! set in [`crate::kernels_fast`]: they are kept deliberately simple (and
//! verbatim), and `omg-nn/tests/kernel_equivalence.rs` property-tests that
//! the fast kernels produce bit-identical outputs. The interpreter runs
//! the fast set by default; set `OMG_KERNELS=reference` to force these.

use crate::quantize::FixedMultiplier;

/// Flat index into an NHWC / OHWI rank-4 tensor.
#[inline(always)]
fn idx4(shape: [usize; 4], a: usize, b: usize, c: usize, d: usize) -> usize {
    ((a * shape[1] + b) * shape[2] + c) * shape[3] + d
}

/// Parameters for [`conv2d`].
#[derive(Debug)]
pub struct Conv2DArgs<'a> {
    /// Input activations, NHWC.
    pub input: &'a [i8],
    /// Input shape `[n, h, w, c]`.
    pub input_shape: [usize; 4],
    /// Filter weights, OHWI.
    pub filter: &'a [i8],
    /// Filter shape `[out_c, kh, kw, in_c]`.
    pub filter_shape: [usize; 4],
    /// Per-output-channel bias.
    pub bias: &'a [i32],
    /// Output buffer, NHWC.
    pub output: &'a mut [i8],
    /// Output shape `[n, oh, ow, out_c]`.
    pub output_shape: [usize; 4],
    /// `(stride_h, stride_w)`.
    pub stride: (usize, usize),
    /// `(pad_top, pad_left)`.
    pub pad: (usize, usize),
    /// `-input_zero_point`.
    pub input_offset: i32,
    /// `output_zero_point`.
    pub output_offset: i32,
    /// `input_scale * filter_scale / output_scale`, fixed-point.
    pub multiplier: FixedMultiplier,
    /// Fused activation clamp low.
    pub act_min: i8,
    /// Fused activation clamp high.
    pub act_max: i8,
}

/// int8 2-D convolution (TFLM `reference_integer_ops::ConvPerTensor`).
pub fn conv2d(args: Conv2DArgs<'_>) {
    let Conv2DArgs {
        input,
        input_shape,
        filter,
        filter_shape,
        bias,
        output,
        output_shape,
        stride,
        pad,
        input_offset,
        output_offset,
        multiplier,
        act_min,
        act_max,
    } = args;
    let [n, in_h, in_w, in_c] = input_shape;
    let [out_c, k_h, k_w, _] = filter_shape;
    let [_, out_h, out_w, _] = output_shape;

    for b in 0..n {
        for oy in 0..out_h {
            for ox in 0..out_w {
                for oc in 0..out_c {
                    let mut acc: i32 = 0;
                    for ky in 0..k_h {
                        let iy = (oy * stride.0 + ky) as isize - pad.0 as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        for kx in 0..k_w {
                            let ix = (ox * stride.1 + kx) as isize - pad.1 as isize;
                            if ix < 0 || ix >= in_w as isize {
                                continue;
                            }
                            for ic in 0..in_c {
                                let iv = i32::from(
                                    input[idx4(input_shape, b, iy as usize, ix as usize, ic)],
                                );
                                let fv = i32::from(filter[idx4(filter_shape, oc, ky, kx, ic)]);
                                acc += (iv + input_offset) * fv;
                            }
                        }
                    }
                    acc += bias[oc];
                    let scaled = multiplier.apply(acc) + output_offset;
                    let clamped = scaled.clamp(i32::from(act_min), i32::from(act_max));
                    output[idx4(output_shape, b, oy, ox, oc)] = clamped as i8;
                }
            }
        }
    }
}

/// Parameters for [`depthwise_conv2d`].
#[derive(Debug)]
pub struct DepthwiseConv2DArgs<'a> {
    /// Input activations, NHWC.
    pub input: &'a [i8],
    /// Input shape `[n, h, w, c]`.
    pub input_shape: [usize; 4],
    /// Filter weights `[1, kh, kw, c * multiplier]`.
    pub filter: &'a [i8],
    /// Filter shape.
    pub filter_shape: [usize; 4],
    /// Per-channel bias.
    pub bias: &'a [i32],
    /// Output buffer, NHWC.
    pub output: &'a mut [i8],
    /// Output shape.
    pub output_shape: [usize; 4],
    /// Channel multiplier.
    pub depth_multiplier: usize,
    /// `(stride_h, stride_w)`.
    pub stride: (usize, usize),
    /// `(pad_top, pad_left)`.
    pub pad: (usize, usize),
    /// `-input_zero_point`.
    pub input_offset: i32,
    /// `output_zero_point`.
    pub output_offset: i32,
    /// Requantization multiplier.
    pub multiplier: FixedMultiplier,
    /// Fused activation clamp low.
    pub act_min: i8,
    /// Fused activation clamp high.
    pub act_max: i8,
}

/// int8 depthwise convolution.
pub fn depthwise_conv2d(args: DepthwiseConv2DArgs<'_>) {
    let DepthwiseConv2DArgs {
        input,
        input_shape,
        filter,
        filter_shape,
        bias,
        output,
        output_shape,
        depth_multiplier,
        stride,
        pad,
        input_offset,
        output_offset,
        multiplier,
        act_min,
        act_max,
    } = args;
    let [n, in_h, in_w, in_c] = input_shape;
    let [_, k_h, k_w, _] = filter_shape;
    let [_, out_h, out_w, out_c] = output_shape;
    debug_assert_eq!(out_c, in_c * depth_multiplier);

    for b in 0..n {
        for oy in 0..out_h {
            for ox in 0..out_w {
                for ic in 0..in_c {
                    for m in 0..depth_multiplier {
                        let oc = ic * depth_multiplier + m;
                        let mut acc: i32 = 0;
                        for ky in 0..k_h {
                            let iy = (oy * stride.0 + ky) as isize - pad.0 as isize;
                            if iy < 0 || iy >= in_h as isize {
                                continue;
                            }
                            for kx in 0..k_w {
                                let ix = (ox * stride.1 + kx) as isize - pad.1 as isize;
                                if ix < 0 || ix >= in_w as isize {
                                    continue;
                                }
                                let iv = i32::from(
                                    input[idx4(input_shape, b, iy as usize, ix as usize, ic)],
                                );
                                let fv = i32::from(filter[idx4(filter_shape, 0, ky, kx, oc)]);
                                acc += (iv + input_offset) * fv;
                            }
                        }
                        acc += bias[oc];
                        let scaled = multiplier.apply(acc) + output_offset;
                        let clamped = scaled.clamp(i32::from(act_min), i32::from(act_max));
                        output[idx4(output_shape, b, oy, ox, oc)] = clamped as i8;
                    }
                }
            }
        }
    }
}

/// Parameters for [`fully_connected`].
#[derive(Debug)]
pub struct FullyConnectedArgs<'a> {
    /// Input activations `[batch, in_features]` (flattened).
    pub input: &'a [i8],
    /// Weights `[out_features, in_features]`.
    pub filter: &'a [i8],
    /// Bias `[out_features]`.
    pub bias: &'a [i32],
    /// Output `[batch, out_features]`.
    pub output: &'a mut [i8],
    /// Input feature count.
    pub in_features: usize,
    /// Output feature count.
    pub out_features: usize,
    /// `-input_zero_point`.
    pub input_offset: i32,
    /// `output_zero_point`.
    pub output_offset: i32,
    /// Requantization multiplier.
    pub multiplier: FixedMultiplier,
    /// Fused activation clamp low.
    pub act_min: i8,
    /// Fused activation clamp high.
    pub act_max: i8,
}

/// int8 fully connected layer (TFLM `reference_integer_ops::FullyConnected`).
pub fn fully_connected(args: FullyConnectedArgs<'_>) {
    let FullyConnectedArgs {
        input,
        filter,
        bias,
        output,
        in_features,
        out_features,
        input_offset,
        output_offset,
        multiplier,
        act_min,
        act_max,
    } = args;
    let batches = input.len() / in_features;
    for b in 0..batches {
        for o in 0..out_features {
            let mut acc: i32 = 0;
            for i in 0..in_features {
                let iv = i32::from(input[b * in_features + i]);
                let fv = i32::from(filter[o * in_features + i]);
                acc += (iv + input_offset) * fv;
            }
            acc += bias[o];
            let scaled = multiplier.apply(acc) + output_offset;
            let clamped = scaled.clamp(i32::from(act_min), i32::from(act_max));
            output[b * out_features + o] = clamped as i8;
        }
    }
}

/// Parameters for the pooling kernels.
#[derive(Debug)]
pub struct Pool2DArgs<'a> {
    /// Input activations, NHWC.
    pub input: &'a [i8],
    /// Input shape.
    pub input_shape: [usize; 4],
    /// Output buffer, NHWC.
    pub output: &'a mut [i8],
    /// Output shape.
    pub output_shape: [usize; 4],
    /// `(filter_h, filter_w)`.
    pub filter: (usize, usize),
    /// `(stride_h, stride_w)`.
    pub stride: (usize, usize),
    /// `(pad_top, pad_left)`.
    pub pad: (usize, usize),
}

/// int8 average pooling: averages over the *valid* window elements with
/// round-half-away-from-zero, matching TFLite.
pub fn average_pool2d(args: Pool2DArgs<'_>) {
    let Pool2DArgs {
        input,
        input_shape,
        output,
        output_shape,
        filter,
        stride,
        pad,
    } = args;
    let [n, in_h, in_w, c] = input_shape;
    let [_, out_h, out_w, _] = output_shape;
    for b in 0..n {
        for oy in 0..out_h {
            for ox in 0..out_w {
                for ch in 0..c {
                    let mut sum: i32 = 0;
                    let mut count: i32 = 0;
                    for ky in 0..filter.0 {
                        let iy = (oy * stride.0 + ky) as isize - pad.0 as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        for kx in 0..filter.1 {
                            let ix = (ox * stride.1 + kx) as isize - pad.1 as isize;
                            if ix < 0 || ix >= in_w as isize {
                                continue;
                            }
                            sum += i32::from(
                                input[idx4(input_shape, b, iy as usize, ix as usize, ch)],
                            );
                            count += 1;
                        }
                    }
                    let avg = if count > 0 {
                        if sum >= 0 {
                            (sum + count / 2) / count
                        } else {
                            (sum - count / 2) / count
                        }
                    } else {
                        0
                    };
                    output[idx4(output_shape, b, oy, ox, ch)] = avg.clamp(-128, 127) as i8;
                }
            }
        }
    }
}

/// int8 max pooling.
pub fn max_pool2d(args: Pool2DArgs<'_>) {
    let Pool2DArgs {
        input,
        input_shape,
        output,
        output_shape,
        filter,
        stride,
        pad,
    } = args;
    let [n, in_h, in_w, c] = input_shape;
    let [_, out_h, out_w, _] = output_shape;
    for b in 0..n {
        for oy in 0..out_h {
            for ox in 0..out_w {
                for ch in 0..c {
                    let mut best = i8::MIN;
                    for ky in 0..filter.0 {
                        let iy = (oy * stride.0 + ky) as isize - pad.0 as isize;
                        if iy < 0 || iy >= in_h as isize {
                            continue;
                        }
                        for kx in 0..filter.1 {
                            let ix = (ox * stride.1 + kx) as isize - pad.1 as isize;
                            if ix < 0 || ix >= in_w as isize {
                                continue;
                            }
                            best =
                                best.max(input[idx4(input_shape, b, iy as usize, ix as usize, ch)]);
                        }
                    }
                    output[idx4(output_shape, b, oy, ox, ch)] = best;
                }
            }
        }
    }
}

/// int8 softmax over the whole slice (one row).
///
/// Dequantizes with `input_scale`/`input_zp`, computes a numerically stable
/// softmax, and requantizes to the fixed TFLite output convention
/// (`scale = 1/256`, `zero_point = -128`).
pub fn softmax(input: &[i8], input_scale: f32, input_zp: i32, output: &mut [i8]) {
    debug_assert_eq!(input.len(), output.len());
    let max_q = input.iter().copied().max().unwrap_or(0);
    let x_max = input_scale * (i32::from(max_q) - input_zp) as f32;
    // Two passes so no scratch buffer is needed: exp is recomputed in the
    // second pass, keeping the kernel allocation-free.
    let mut sum = 0f32;
    for &q in input {
        let x = input_scale * (i32::from(q) - input_zp) as f32;
        sum += (x - x_max).exp();
    }
    for (o, &q) in output.iter_mut().zip(input.iter()) {
        let x = input_scale * (i32::from(q) - input_zp) as f32;
        let p = (x - x_max).exp() / sum;
        // q = p / (1/256) - 128
        let q = (p * 256.0).round() as i32 - 128;
        *o = q.clamp(-128, 127) as i8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantize::{FixedMultiplier, QuantParams};
    use proptest::prelude::*;

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1, no bias, unit scales => output = input.
        let input: Vec<i8> = vec![1, -2, 3, -4];
        let mut output = vec![0i8; 4];
        conv2d(Conv2DArgs {
            input: &input,
            input_shape: [1, 2, 2, 1],
            filter: &[1],
            filter_shape: [1, 1, 1, 1],
            bias: &[0],
            output: &mut output,
            output_shape: [1, 2, 2, 1],
            stride: (1, 1),
            pad: (0, 0),
            input_offset: 0,
            output_offset: 0,
            multiplier: FixedMultiplier::from_real(0.999_999_999).unwrap(),
            act_min: -128,
            act_max: 127,
        });
        assert_eq!(output, input);
    }

    #[test]
    fn conv2d_known_sum() {
        // 2x2 input of ones, 2x2 kernel of ones, VALID: single output = 4
        // (plus bias 10 => 14), multiplier 0.5 => 7.
        let input = vec![1i8; 4];
        let mut output = vec![0i8; 1];
        conv2d(Conv2DArgs {
            input: &input,
            input_shape: [1, 2, 2, 1],
            filter: &[1, 1, 1, 1],
            filter_shape: [1, 2, 2, 1],
            bias: &[10],
            output: &mut output,
            output_shape: [1, 1, 1, 1],
            stride: (1, 1),
            pad: (0, 0),
            input_offset: 0,
            output_offset: 0,
            multiplier: FixedMultiplier::from_real(0.5).unwrap(),
            act_min: -128,
            act_max: 127,
        });
        assert_eq!(output[0], 7);
    }

    #[test]
    fn conv2d_relu_clamps_at_zero_point() {
        // Negative accumulator with act_min = 0 (zp) clamps to 0.
        let input = vec![-10i8; 4];
        let mut output = vec![0i8; 1];
        conv2d(Conv2DArgs {
            input: &input,
            input_shape: [1, 2, 2, 1],
            filter: &[1, 1, 1, 1],
            filter_shape: [1, 2, 2, 1],
            bias: &[0],
            output: &mut output,
            output_shape: [1, 1, 1, 1],
            stride: (1, 1),
            pad: (0, 0),
            input_offset: 0,
            output_offset: 0,
            multiplier: FixedMultiplier::from_real(0.9999).unwrap(),
            act_min: 0,
            act_max: 127,
        });
        assert_eq!(output[0], 0);
    }

    #[test]
    fn conv2d_same_padding_zero_contribution() {
        // With input_offset = -zp, padded (absent) positions contribute
        // nothing; here zp = 0 so a centred 3x3 all-ones kernel on a single
        // one-hot input counts the valid neighbourhood only.
        let mut input = vec![0i8; 9];
        input[4] = 1; // centre
        let mut output = vec![0i8; 9];
        conv2d(Conv2DArgs {
            input: &input,
            input_shape: [1, 3, 3, 1],
            filter: &[1; 9],
            filter_shape: [1, 3, 3, 1],
            bias: &[0],
            output: &mut output,
            output_shape: [1, 3, 3, 1],
            stride: (1, 1),
            pad: (1, 1),
            input_offset: 0,
            output_offset: 0,
            multiplier: FixedMultiplier::from_real(0.999_999).unwrap(),
            act_min: -128,
            act_max: 127,
        });
        // Every position whose 3x3 window covers the centre sees sum 1.
        assert_eq!(output, vec![1i8; 9]);
    }

    #[test]
    fn fully_connected_known_answer() {
        // input [1,2,3], weights row0 = [1,1,1] row1 = [1,-1,0], bias [0, 5].
        let input = vec![1i8, 2, 3];
        let filter = vec![1i8, 1, 1, 1, -1, 0];
        let mut output = vec![0i8; 2];
        fully_connected(FullyConnectedArgs {
            input: &input,
            filter: &filter,
            bias: &[0, 5],
            output: &mut output,
            in_features: 3,
            out_features: 2,
            input_offset: 0,
            output_offset: 0,
            multiplier: FixedMultiplier::from_real(0.999_999_999).unwrap(),
            act_min: -128,
            act_max: 127,
        });
        assert_eq!(output, vec![6, 4]);
    }

    #[test]
    fn average_pool_rounds_half_away() {
        let input = vec![1i8, 2, 3, 4];
        let mut output = vec![0i8; 1];
        average_pool2d(Pool2DArgs {
            input: &input,
            input_shape: [1, 2, 2, 1],
            output: &mut output,
            output_shape: [1, 1, 1, 1],
            filter: (2, 2),
            stride: (2, 2),
            pad: (0, 0),
        });
        // (1+2+3+4)/4 = 2.5 -> 3
        assert_eq!(output[0], 3);
    }

    #[test]
    fn max_pool_finds_max() {
        let input = vec![1i8, -2, 7, 4];
        let mut output = vec![0i8; 1];
        max_pool2d(Pool2DArgs {
            input: &input,
            input_shape: [1, 2, 2, 1],
            output: &mut output,
            output_shape: [1, 1, 1, 1],
            filter: (2, 2),
            stride: (2, 2),
            pad: (0, 0),
        });
        assert_eq!(output[0], 7);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let input = vec![10i8, 20, 30, -5];
        let mut output = vec![0i8; 4];
        softmax(&input, 0.1, 0, &mut output);
        // Probabilities (q + 128) / 256 sum to ~1.
        let total: f32 = output
            .iter()
            .map(|&q| (i32::from(q) + 128) as f32 / 256.0)
            .sum();
        assert!((total - 1.0).abs() < 0.02, "total={total}");
        // Ordering preserved.
        assert!(output[2] > output[1]);
        assert!(output[1] > output[0]);
        assert!(output[0] >= output[3]);
    }

    /// Float reference convolution for the equivalence property test.
    #[allow(clippy::too_many_arguments)]
    fn conv2d_f32_reference(
        input: &[f32],
        input_shape: [usize; 4],
        filter: &[f32],
        filter_shape: [usize; 4],
        bias: &[f32],
        stride: (usize, usize),
        pad: (usize, usize),
        output_shape: [usize; 4],
    ) -> Vec<f32> {
        let [n, in_h, in_w, in_c] = input_shape;
        let [out_c, k_h, k_w, _] = filter_shape;
        let [_, out_h, out_w, _] = output_shape;
        let mut out = vec![0f32; n * out_h * out_w * out_c];
        for b in 0..n {
            for oy in 0..out_h {
                for ox in 0..out_w {
                    for oc in 0..out_c {
                        let mut acc = bias[oc];
                        for ky in 0..k_h {
                            let iy = (oy * stride.0 + ky) as isize - pad.0 as isize;
                            if iy < 0 || iy >= in_h as isize {
                                continue;
                            }
                            for kx in 0..k_w {
                                let ix = (ox * stride.1 + kx) as isize - pad.1 as isize;
                                if ix < 0 || ix >= in_w as isize {
                                    continue;
                                }
                                for ic in 0..in_c {
                                    acc += input
                                        [idx4(input_shape, b, iy as usize, ix as usize, ic)]
                                        * filter[idx4(filter_shape, oc, ky, kx, ic)];
                                }
                            }
                        }
                        out[idx4(output_shape, b, oy, ox, oc)] = acc;
                    }
                }
            }
        }
        out
    }

    proptest! {
        /// Quantized conv ≈ float conv within one output quantum. This is
        /// the property that makes "accuracy unchanged under OMG" plausible:
        /// the quantized pipeline tracks the real-valued one tightly.
        #[test]
        fn prop_quantized_conv_tracks_float(
            seed_vals in proptest::collection::vec(-1.0f32..1.0, 16),
            filter_vals in proptest::collection::vec(-0.5f32..0.5, 4),
        ) {
            let input_shape = [1, 4, 4, 1];
            let filter_shape = [1, 2, 2, 1];
            let output_shape = [1, 3, 3, 1];

            let in_qp = QuantParams::from_min_max(-1.0, 1.0);
            let w_scale = filter_vals.iter().fold(0f32, |m, v| m.max(v.abs())).max(1e-3) / 127.0;
            let w_qp = QuantParams::symmetric(w_scale);
            let out_qp = QuantParams::from_min_max(-2.5, 2.5);

            let q_in = in_qp.quantize_slice(&seed_vals);
            let q_w = w_qp.quantize_slice(&filter_vals);
            // Float values as actually represented after quantization.
            let f_in = in_qp.dequantize_slice(&q_in);
            let f_w = w_qp.dequantize_slice(&q_w);

            let f_out = conv2d_f32_reference(
                &f_in, input_shape, &f_w, filter_shape, &[0.0], (1, 1), (0, 0), output_shape,
            );

            let mult = FixedMultiplier::from_real(
                f64::from(in_qp.scale) * f64::from(w_qp.scale) / f64::from(out_qp.scale),
            ).unwrap();
            let mut q_out = vec![0i8; 9];
            conv2d(Conv2DArgs {
                input: &q_in,
                input_shape,
                filter: &q_w,
                filter_shape,
                bias: &[0],
                output: &mut q_out,
                output_shape,
                stride: (1, 1),
                pad: (0, 0),
                input_offset: -in_qp.zero_point,
                output_offset: out_qp.zero_point,
                multiplier: mult,
                act_min: -128,
                act_max: 127,
            });

            for (q, f) in q_out.iter().zip(f_out.iter()) {
                let dq = out_qp.dequantize(*q);
                prop_assert!(
                    (dq - f).abs() <= out_qp.scale * 1.5 + 1e-4,
                    "quantized {dq} vs float {f}"
                );
            }
        }
    }
}
