//! Affine quantization arithmetic with TensorFlow Lite reference semantics.
//!
//! TFLite represents a real value `r` as an int8 `q` with
//! `r = scale * (q - zero_point)`. Requantization of int32 accumulators uses
//! the gemmlowp fixed-point pipeline: a 32-bit normalized multiplier plus a
//! power-of-two shift, applied with *round-to-nearest-even-away* semantics
//! (`SaturatingRoundingDoublingHighMul` + `RoundingDivideByPOT`). Matching
//! these exactly means a model quantized here produces bit-identical outputs
//! to the TFLM reference kernels.

use crate::error::{NnError, Result};

/// Quantization parameters of a tensor: `real = scale * (q - zero_point)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuantParams {
    /// Positive real-valued step size.
    pub scale: f32,
    /// Integer that represents real zero.
    pub zero_point: i32,
}

impl QuantParams {
    /// Parameters representing real zero at integer zero with the given
    /// scale (used for weights, which TFLite quantizes symmetrically).
    pub fn symmetric(scale: f32) -> Self {
        QuantParams {
            scale,
            zero_point: 0,
        }
    }

    /// Chooses asymmetric int8 parameters covering `[min, max]`.
    ///
    /// The range is first widened to include 0.0 (a TFLite requirement so
    /// that zero padding is exactly representable).
    ///
    /// # Examples
    ///
    /// ```
    /// use omg_nn::quantize::QuantParams;
    ///
    /// let qp = QuantParams::from_min_max(0.0, 25.5);
    /// assert_eq!(qp.zero_point, -128);
    /// assert!((qp.scale - 0.1).abs() < 1e-6);
    /// ```
    pub fn from_min_max(min: f32, max: f32) -> Self {
        let min = min.min(0.0);
        let max = max.max(0.0);
        let range = (max - min).max(f32::EPSILON);
        let scale = range / 255.0;
        // zero_point = qmin - min/scale, clamped and rounded.
        let zp = (-128.0 - min / scale).round();
        let zero_point = zp.clamp(-128.0, 127.0) as i32;
        QuantParams { scale, zero_point }
    }

    /// Quantizes a real value to int8 with saturation.
    pub fn quantize(&self, real: f32) -> i8 {
        let q = (real / self.scale).round() as i64 + i64::from(self.zero_point);
        q.clamp(-128, 127) as i8
    }

    /// Dequantizes an int8 value.
    pub fn dequantize(&self, q: i8) -> f32 {
        self.scale * (i32::from(q) - self.zero_point) as f32
    }

    /// Quantizes a slice.
    pub fn quantize_slice(&self, reals: &[f32]) -> Vec<i8> {
        reals.iter().map(|&r| self.quantize(r)).collect()
    }

    /// Dequantizes a slice.
    pub fn dequantize_slice(&self, qs: &[i8]) -> Vec<f32> {
        qs.iter().map(|&q| self.dequantize(q)).collect()
    }
}

/// A normalized fixed-point multiplier: `real_multiplier ≈
/// multiplier / 2^31 * 2^shift` with `multiplier` in `[2^30, 2^31)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedMultiplier {
    /// The quantized significand in Q31.
    pub multiplier: i32,
    /// Power-of-two exponent (may be negative).
    pub shift: i32,
}

impl FixedMultiplier {
    /// Quantizes a positive real multiplier (typically
    /// `input_scale * filter_scale / output_scale`, well below 1).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::MalformedModel`] for non-positive or non-finite
    /// multipliers.
    pub fn from_real(real: f64) -> Result<Self> {
        if !(real.is_finite() && real > 0.0) {
            return Err(NnError::MalformedModel(
                "requantization multiplier must be positive",
            ));
        }
        // frexp: real = significand * 2^exp with significand in [0.5, 1).
        let exp = real.log2().floor() as i32 + 1;
        let significand = real / 2f64.powi(exp);
        debug_assert!((0.5..1.0).contains(&significand));
        let mut q = (significand * (1i64 << 31) as f64).round() as i64;
        let mut shift = exp;
        if q == (1i64 << 31) {
            q /= 2;
            shift += 1;
        }
        Ok(FixedMultiplier {
            multiplier: q as i32,
            shift,
        })
    }

    /// Applies the multiplier to an int32 accumulator with TFLite reference
    /// rounding (`MultiplyByQuantizedMultiplier`).
    pub fn apply(&self, x: i32) -> i32 {
        let left_shift = self.shift.max(0);
        let right_shift = (-self.shift).max(0);
        let shifted = x.saturating_mul(1i32 << left_shift);
        let mul = saturating_rounding_doubling_high_mul(shifted, self.multiplier);
        rounding_divide_by_pot(mul, right_shift)
    }
}

/// gemmlowp `SaturatingRoundingDoublingHighMul`.
fn saturating_rounding_doubling_high_mul(a: i32, b: i32) -> i32 {
    if a == i32::MIN && b == i32::MIN {
        return i32::MAX;
    }
    let ab = i64::from(a) * i64::from(b);
    let nudge: i64 = if ab >= 0 { 1 << 30 } else { 1 - (1 << 30) };
    // Note: truncating division, not an arithmetic shift — they differ for
    // negative values, and gemmlowp specifies division semantics.
    ((ab + nudge) / (1i64 << 31)) as i32
}

/// gemmlowp `RoundingDivideByPOT` (round half away from zero on ties toward
/// the sign of the remainder — the "banker's"-adjacent rule TFLite uses).
fn rounding_divide_by_pot(x: i32, exponent: i32) -> i32 {
    debug_assert!((0..=31).contains(&exponent));
    if exponent == 0 {
        return x;
    }
    let mask = (1i64 << exponent) - 1;
    let remainder = i64::from(x) & mask;
    let threshold = (mask >> 1) + i64::from(x < 0);
    let mut result = x >> exponent;
    if remainder > threshold {
        result = result.wrapping_add(1);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn from_min_max_covers_zero() {
        let qp = QuantParams::from_min_max(2.0, 10.0); // must widen to [0, 10]
        assert_eq!(qp.quantize(0.0), qp.zero_point.clamp(-128, 127) as i8);
        let qp = QuantParams::from_min_max(-10.0, -2.0); // widen to [-10, 0]
        assert!((qp.dequantize(qp.quantize(0.0))).abs() < qp.scale);
    }

    #[test]
    fn quantize_saturates() {
        let qp = QuantParams {
            scale: 0.1,
            zero_point: 0,
        };
        assert_eq!(qp.quantize(1000.0), 127);
        assert_eq!(qp.quantize(-1000.0), -128);
    }

    #[test]
    fn symmetric_has_zero_zp() {
        let qp = QuantParams::symmetric(0.05);
        assert_eq!(qp.zero_point, 0);
        assert_eq!(qp.quantize(0.0), 0);
    }

    #[test]
    fn fixed_multiplier_normalization() {
        let m = FixedMultiplier::from_real(0.5).unwrap();
        assert_eq!(m.shift, 0);
        assert_eq!(m.multiplier, 1 << 30);
        let m = FixedMultiplier::from_real(0.25).unwrap();
        assert_eq!(m.shift, -1);
        let m = FixedMultiplier::from_real(1.0).unwrap();
        assert_eq!(m.shift, 1);
        assert_eq!(m.multiplier, 1 << 30);
    }

    #[test]
    fn fixed_multiplier_rejects_bad_values() {
        assert!(FixedMultiplier::from_real(0.0).is_err());
        assert!(FixedMultiplier::from_real(-1.0).is_err());
        assert!(FixedMultiplier::from_real(f64::NAN).is_err());
        assert!(FixedMultiplier::from_real(f64::INFINITY).is_err());
    }

    #[test]
    fn apply_matches_real_arithmetic_on_examples() {
        for &real in &[0.0003718, 0.0125, 0.45, 0.99, 0.5] {
            let m = FixedMultiplier::from_real(real).unwrap();
            for &x in &[0i32, 1, -1, 1000, -1000, 123_456, -987_654, i32::MAX / 4] {
                let got = m.apply(x);
                let want = (f64::from(x) * real).round() as i64;
                let err = (i64::from(got) - want).abs();
                assert!(err <= 1, "real={real} x={x} got={got} want={want}");
            }
        }
    }

    #[test]
    fn rounding_divide_matches_reference() {
        assert_eq!(rounding_divide_by_pot(5, 1), 3); // 2.5 rounds away to 3
        assert_eq!(rounding_divide_by_pot(-5, 1), -3);
        assert_eq!(rounding_divide_by_pot(4, 1), 2);
        assert_eq!(rounding_divide_by_pot(4, 2), 1);
        assert_eq!(rounding_divide_by_pot(7, 0), 7);
    }

    #[test]
    fn doubling_high_mul_saturation_edge() {
        assert_eq!(
            saturating_rounding_doubling_high_mul(i32::MIN, i32::MIN),
            i32::MAX
        );
    }

    proptest! {
        #[test]
        fn prop_quantize_dequantize_within_half_scale(
            real in -100.0f32..100.0,
            min in -50.0f32..0.0,
            max in 0.1f32..50.0,
        ) {
            let qp = QuantParams::from_min_max(min, max);
            let clamped = real.clamp(qp.dequantize(-128), qp.dequantize(127));
            let round_trip = qp.dequantize(qp.quantize(clamped));
            prop_assert!((round_trip - clamped).abs() <= qp.scale * 0.5 + 1e-6);
        }

        #[test]
        fn prop_apply_close_to_float(real in 1e-6f64..0.9999, x in -1_000_000i32..1_000_000) {
            let m = FixedMultiplier::from_real(real).unwrap();
            let got = i64::from(m.apply(x));
            let want = (f64::from(x) * real).round() as i64;
            prop_assert!((got - want).abs() <= 1);
        }

        #[test]
        fn prop_zero_always_representable(min in -50.0f32..0.0, max in 0.0f32..50.0) {
            let qp = QuantParams::from_min_max(min, max);
            let zero_round_trip = qp.dequantize(qp.quantize(0.0));
            prop_assert!(zero_round_trip.abs() <= qp.scale * 0.5);
        }
    }
}
