//! Tensor metadata: shapes, element types, quantization.

use crate::quantize::QuantParams;

/// Index of a tensor within a [`crate::model::Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TensorId(pub(crate) usize);

impl TensorId {
    /// The raw index (stable within one model).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Element type of a tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DType {
    /// Quantized 8-bit activations and weights.
    I8,
    /// 32-bit bias accumulators.
    I32,
    /// Floating point (reference/debug paths only).
    F32,
}

impl DType {
    /// Bytes per element.
    pub fn byte_size(self) -> usize {
        match self {
            DType::I8 => 1,
            DType::I32 => 4,
            DType::F32 => 4,
        }
    }

    /// Stable on-disk tag for the model format.
    pub(crate) fn tag(self) -> u8 {
        match self {
            DType::I8 => 0,
            DType::I32 => 1,
            DType::F32 => 2,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(DType::I8),
            1 => Some(DType::I32),
            2 => Some(DType::F32),
            _ => None,
        }
    }
}

/// Metadata of one tensor: shape, type, quantization, and (for weights) the
/// index of its constant buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct TensorInfo {
    name: String,
    shape: Vec<usize>,
    dtype: DType,
    quant: Option<QuantParams>,
    buffer: Option<usize>,
}

impl TensorInfo {
    pub(crate) fn new(
        name: String,
        shape: Vec<usize>,
        dtype: DType,
        quant: Option<QuantParams>,
        buffer: Option<usize>,
    ) -> Self {
        TensorInfo {
            name,
            shape,
            dtype,
            quant,
            buffer,
        }
    }

    /// Human-readable tensor name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tensor's shape (e.g. `[1, 49, 43, 1]` for the audio fingerprint).
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Element type.
    pub fn dtype(&self) -> DType {
        self.dtype
    }

    /// Quantization parameters, if the tensor is quantized.
    pub fn quant(&self) -> Option<QuantParams> {
        self.quant
    }

    /// Index of the weight buffer backing this tensor, if constant.
    pub fn buffer(&self) -> Option<usize> {
        self.buffer
    }

    /// Whether the tensor is a constant (weight/bias).
    pub fn is_constant(&self) -> bool {
        self.buffer.is_some()
    }

    /// Number of elements.
    pub fn elem_count(&self) -> usize {
        self.shape.iter().product()
    }

    /// Total byte size.
    pub fn byte_size(&self) -> usize {
        self.elem_count() * self.dtype.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes() {
        assert_eq!(DType::I8.byte_size(), 1);
        assert_eq!(DType::I32.byte_size(), 4);
        assert_eq!(DType::F32.byte_size(), 4);
    }

    #[test]
    fn dtype_tags_roundtrip() {
        for d in [DType::I8, DType::I32, DType::F32] {
            assert_eq!(DType::from_tag(d.tag()), Some(d));
        }
        assert_eq!(DType::from_tag(99), None);
    }

    #[test]
    fn tensor_info_accessors() {
        let t = TensorInfo::new(
            "fingerprint".into(),
            vec![1, 49, 43, 1],
            DType::I8,
            Some(QuantParams {
                scale: 0.5,
                zero_point: -128,
            }),
            None,
        );
        assert_eq!(t.name(), "fingerprint");
        assert_eq!(t.elem_count(), 49 * 43);
        assert_eq!(t.byte_size(), 49 * 43);
        assert!(!t.is_constant());
        assert!(t.quant().is_some());
    }

    #[test]
    fn constant_tensor() {
        let t = TensorInfo::new("bias".into(), vec![8], DType::I32, None, Some(2));
        assert!(t.is_constant());
        assert_eq!(t.buffer(), Some(2));
        assert_eq!(t.byte_size(), 32);
    }
}
