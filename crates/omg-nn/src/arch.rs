//! Runtime-dispatched SIMD dot-product microkernels.
//!
//! The fast kernels funnel all heavy arithmetic through three shapes of
//! int8 dot product (plain, offset-applied, and a four-row output panel
//! sharing one activation pass). This module provides a [`KernelVTable`]
//! of function pointers for each shape and picks the best implementation
//! the running CPU supports, **once**, behind a `OnceLock`:
//!
//! * **x86_64 + AVX2** — 32 int8 lanes per step: bytes are widened to i16
//!   halves (`vpmovsxbw`) and folded with `vpmaddwd`, which multiplies
//!   i16 pairs into full i32 products and adds adjacent pairs in i32.
//!   Every intermediate is exact: an i8×i8 product fits i16 with room to
//!   spare, a widened `a + offset` term fits i16 because model validation
//!   pins quantization zero points to the i8 range, and all accumulation
//!   happens in i32 — so lane reassociation yields *the same* i32 sums
//!   the scalar reference computes term by term.
//! * **aarch64 NEON** — 16 lanes per step via the `sdot`-shaped
//!   `vmull_s8` + `vpadalq_s16` (and widening `vmlal_s16` for the offset
//!   paths). NEON is baseline on aarch64, so no feature probe is needed.
//! * **portable** — the autovectorized lane loops from [`crate::gemm`],
//!   always available, and the implementation behind the
//!   `OMG_KERNELS=portable` tier.
//!
//! Selection happens at [`detect`] (called from `Interpreter::new` via
//! [`crate::interpreter::KernelSet::vtable`]); the result is cached for
//! the life of the process. The differential oracle in
//! `omg-nn/tests/kernel_equivalence.rs` proves every dispatched tier
//! bit-exact against the scalar reference kernels.

use std::sync::OnceLock;

use crate::gemm::{self, LANES};

/// The dot-product microkernels one dispatch tier executes with.
///
/// All three entries compute mathematically identical i32 sums; they
/// differ only in how many lanes they chew per step. `dot_i8_offset_x4`
/// is the fully-connected panel kernel: one pass over the activations
/// `a`, widened and offset once, dotted against four weight rows — the
/// activation traffic is amortized 4× versus four independent calls.
#[derive(Debug)]
pub struct KernelVTable {
    /// Tier name as reported in bench JSON and diagnostics
    /// (`"avx2"`, `"neon"`, or `"portable"`).
    pub name: &'static str,
    /// `Σ a_i · b_i` over equal-length i8 slices.
    pub dot_i8: fn(&[i8], &[i8]) -> i32,
    /// `Σ (a_i + offset) · b_i`.
    pub dot_i8_offset: fn(&[i8], &[i8], i32) -> i32,
    /// `Σ (a_i + offset) · r_i` for four rows `r` in one activation pass.
    pub dot_i8_offset_x4: DotX4Fn,
}

/// Signature of the four-row panel dot kernel.
pub type DotX4Fn = fn(&[i8], [&[i8]; 4], i32) -> [i32; 4];

/// The always-available portable tier: the same lane loops LLVM
/// autovectorizes on every target (see [`crate::gemm::dot_i8`]).
pub static PORTABLE: KernelVTable = KernelVTable {
    name: "portable",
    dot_i8: gemm::dot_i8,
    dot_i8_offset: gemm::dot_i8_offset,
    dot_i8_offset_x4: dot_i8_offset_x4_portable,
};

/// Portable four-row panel dot: the activation chunk is offset-widened
/// once into `aw` and reused across all four weight rows.
fn dot_i8_offset_x4_portable(a: &[i8], rows: [&[i8]; 4], offset: i32) -> [i32; 4] {
    let k = a.len();
    for r in &rows {
        debug_assert_eq!(r.len(), k);
    }
    let chunks = k / LANES;
    let mut lanes = [[0i32; LANES]; 4];
    for c in 0..chunks {
        let base = c * LANES;
        let ax = &a[base..base + LANES];
        let mut aw = [0i32; LANES];
        for l in 0..LANES {
            aw[l] = i32::from(ax[l]) + offset;
        }
        for (acc, row) in lanes.iter_mut().zip(&rows) {
            let rx = &row[base..base + LANES];
            for l in 0..LANES {
                acc[l] += aw[l] * i32::from(rx[l]);
            }
        }
    }
    let mut out = [0i32; 4];
    for (o, (acc, row)) in out.iter_mut().zip(lanes.iter().zip(&rows)) {
        let mut sum: i32 = acc.iter().sum();
        for i in chunks * LANES..k {
            sum += (i32::from(a[i]) + offset) * i32::from(row[i]);
        }
        *o = sum;
    }
    out
}

/// Returns the best vtable the running CPU supports, probing CPU features
/// exactly once per process (`OnceLock`). This is the "simd" dispatch
/// tier; `OMG_KERNELS=portable|reference` bypass it entirely.
pub fn detect() -> &'static KernelVTable {
    static ACTIVE: OnceLock<&'static KernelVTable> = OnceLock::new();
    ACTIVE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            return &x86::AVX2;
        }
        #[cfg(target_arch = "aarch64")]
        return &neon::NEON;
        #[allow(unreachable_code)]
        &PORTABLE
    })
}

/// Offsets with `|offset| ≤ 128` (guaranteed by model validation: an i8
/// tensor's zero point must fit i8, and the kernels use `-zp`) can be
/// folded into an i16 widening without overflow: `a + offset` stays in
/// `[-256, 255]`. Anything wider falls back to the portable i32 loop so
/// the vtable stays exact for arbitrary caller-supplied offsets.
#[cfg(any(target_arch = "x86_64", target_arch = "aarch64"))]
fn offset_fits_i16_fold(offset: i32) -> bool {
    (-128..=128).contains(&offset)
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::KernelVTable;
    use std::arch::x86_64::*;

    /// AVX2 tier. The function pointers below are only installed after
    /// `is_x86_feature_detected!("avx2")` succeeds in [`super::detect`],
    /// which is what makes the internal `unsafe` target-feature calls
    /// sound.
    pub static AVX2: KernelVTable = KernelVTable {
        name: "avx2",
        dot_i8,
        dot_i8_offset,
        dot_i8_offset_x4,
    };

    fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY: AVX2 presence was verified before this vtable was
        // published (see `AVX2` above); slices are equal-length and the
        // kernel reads only in-bounds 32-byte chunks plus a scalar tail.
        unsafe { dot_i8_avx2(a, b) }
    }

    fn dot_i8_offset(a: &[i8], b: &[i8], offset: i32) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        if !super::offset_fits_i16_fold(offset) {
            return crate::gemm::dot_i8_offset(a, b, offset);
        }
        // SAFETY: as in `dot_i8`; additionally `offset` fits the i16 fold.
        unsafe { dot_i8_offset_avx2(a, b, offset) }
    }

    fn dot_i8_offset_x4(a: &[i8], rows: [&[i8]; 4], offset: i32) -> [i32; 4] {
        if !super::offset_fits_i16_fold(offset) {
            return super::dot_i8_offset_x4_portable(a, rows, offset);
        }
        for r in &rows {
            debug_assert_eq!(r.len(), a.len());
        }
        // SAFETY: as in `dot_i8`, for all five equal-length slices.
        unsafe { dot_i8_offset_x4_avx2(a, rows, offset) }
    }

    /// Widens both 16-byte halves of an i8 vector pair to i16 and folds
    /// them into the i32 accumulator via `vpmaddwd`. Exact: i8×i8
    /// products fit i16 ranges well inside what `madd` pairs into i32.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn madd_i8(acc: __m256i, av: __m256i, bv: __m256i) -> __m256i {
        let alo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(av));
        let ahi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(av, 1));
        let blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
        let bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
        let p = _mm256_add_epi32(_mm256_madd_epi16(alo, blo), _mm256_madd_epi16(ahi, bhi));
        _mm256_add_epi32(acc, p)
    }

    /// Horizontal sum of the eight i32 lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn hsum_i32(acc: __m256i) -> i32 {
        let s = _mm_add_epi32(
            _mm256_castsi256_si128(acc),
            _mm256_extracti128_si256(acc, 1),
        );
        let s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01));
        _mm_cvtsi128_si32(s)
    }

    #[target_feature(enable = "avx2")]
    unsafe fn dot_i8_avx2(a: &[i8], b: &[i8]) -> i32 {
        let mut acc = _mm256_setzero_si256();
        let chunks = a.len() / 32;
        for i in 0..chunks {
            let av = _mm256_loadu_si256(a.as_ptr().add(i * 32).cast());
            let bv = _mm256_loadu_si256(b.as_ptr().add(i * 32).cast());
            acc = madd_i8(acc, av, bv);
        }
        let mut sum = hsum_i32(acc);
        for i in chunks * 32..a.len() {
            sum += i32::from(a[i]) * i32::from(b[i]);
        }
        sum
    }

    #[target_feature(enable = "avx2")]
    unsafe fn dot_i8_offset_avx2(a: &[i8], b: &[i8], offset: i32) -> i32 {
        let off = _mm256_set1_epi16(offset as i16);
        let mut acc = _mm256_setzero_si256();
        let chunks = a.len() / 32;
        for i in 0..chunks {
            let av = _mm256_loadu_si256(a.as_ptr().add(i * 32).cast());
            let bv = _mm256_loadu_si256(b.as_ptr().add(i * 32).cast());
            // (a + offset) stays in [-256, 255]: exact in i16.
            let alo = _mm256_add_epi16(_mm256_cvtepi8_epi16(_mm256_castsi256_si128(av)), off);
            let ahi = _mm256_add_epi16(_mm256_cvtepi8_epi16(_mm256_extracti128_si256(av, 1)), off);
            let blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
            let bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
            let p = _mm256_add_epi32(_mm256_madd_epi16(alo, blo), _mm256_madd_epi16(ahi, bhi));
            acc = _mm256_add_epi32(acc, p);
        }
        let mut sum = hsum_i32(acc);
        for i in chunks * 32..a.len() {
            sum += (i32::from(a[i]) + offset) * i32::from(b[i]);
        }
        sum
    }

    #[target_feature(enable = "avx2")]
    unsafe fn dot_i8_offset_x4_avx2(a: &[i8], rows: [&[i8]; 4], offset: i32) -> [i32; 4] {
        let off = _mm256_set1_epi16(offset as i16);
        let mut acc = [_mm256_setzero_si256(); 4];
        let chunks = a.len() / 32;
        for i in 0..chunks {
            let av = _mm256_loadu_si256(a.as_ptr().add(i * 32).cast());
            let alo = _mm256_add_epi16(_mm256_cvtepi8_epi16(_mm256_castsi256_si128(av)), off);
            let ahi = _mm256_add_epi16(_mm256_cvtepi8_epi16(_mm256_extracti128_si256(av, 1)), off);
            for (r, row) in rows.iter().enumerate() {
                let bv = _mm256_loadu_si256(row.as_ptr().add(i * 32).cast());
                let blo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(bv));
                let bhi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256(bv, 1));
                let p = _mm256_add_epi32(_mm256_madd_epi16(alo, blo), _mm256_madd_epi16(ahi, bhi));
                acc[r] = _mm256_add_epi32(acc[r], p);
            }
        }
        let mut out = [0i32; 4];
        for (o, (acc, row)) in out.iter_mut().zip(acc.iter().zip(&rows)) {
            let mut sum = hsum_i32(*acc);
            for i in chunks * 32..a.len() {
                sum += (i32::from(a[i]) + offset) * i32::from(row[i]);
            }
            *o = sum;
        }
        out
    }
}

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::KernelVTable;
    use std::arch::aarch64::*;

    /// NEON tier. NEON (asimd) is part of the aarch64 baseline, so these
    /// entry points are sound on every aarch64 target std supports.
    pub static NEON: KernelVTable = KernelVTable {
        name: "neon",
        dot_i8: dot_i8,
        dot_i8_offset: dot_i8_offset,
        dot_i8_offset_x4: dot_i8_offset_x4,
    };

    fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        // SAFETY: NEON is baseline on aarch64; only in-bounds 16-byte
        // chunks are read, plus a scalar tail.
        unsafe { dot_i8_neon(a, b) }
    }

    fn dot_i8_offset(a: &[i8], b: &[i8], offset: i32) -> i32 {
        debug_assert_eq!(a.len(), b.len());
        if !super::offset_fits_i16_fold(offset) {
            return crate::gemm::dot_i8_offset(a, b, offset);
        }
        // SAFETY: as in `dot_i8`; `offset` fits the i16 fold.
        unsafe { dot_i8_offset_neon(a, b, offset) }
    }

    fn dot_i8_offset_x4(a: &[i8], rows: [&[i8]; 4], offset: i32) -> [i32; 4] {
        if !super::offset_fits_i16_fold(offset) {
            return super::dot_i8_offset_x4_portable(a, rows, offset);
        }
        for r in &rows {
            debug_assert_eq!(r.len(), a.len());
        }
        let mut out = [0i32; 4];
        for (o, row) in out.iter_mut().zip(&rows) {
            // SAFETY: as in `dot_i8_offset`.
            *o = unsafe { dot_i8_offset_neon(a, row, offset) };
        }
        out
    }

    /// `sdot`-shaped core: i8×i8 → i16 via `vmull_s8` (exact — products
    /// fit i16), then pairwise-accumulate into i32 via `vpadalq_s16`.
    #[target_feature(enable = "neon")]
    unsafe fn dot_i8_neon(a: &[i8], b: &[i8]) -> i32 {
        let mut acc = vdupq_n_s32(0);
        let chunks = a.len() / 16;
        for i in 0..chunks {
            let av = vld1q_s8(a.as_ptr().add(i * 16));
            let bv = vld1q_s8(b.as_ptr().add(i * 16));
            acc = vpadalq_s16(acc, vmull_s8(vget_low_s8(av), vget_low_s8(bv)));
            acc = vpadalq_s16(acc, vmull_s8(vget_high_s8(av), vget_high_s8(bv)));
        }
        let mut sum = vaddvq_s32(acc);
        for i in chunks * 16..a.len() {
            sum += i32::from(a[i]) * i32::from(b[i]);
        }
        sum
    }

    /// Offset path: widen `a` to i16, fold the offset (exact — the sum
    /// stays in [-256, 255]), then widening multiply-accumulate into i32
    /// with `vmlal_s16`.
    #[target_feature(enable = "neon")]
    unsafe fn dot_i8_offset_neon(a: &[i8], b: &[i8], offset: i32) -> i32 {
        let off = vdupq_n_s16(offset as i16);
        let mut acc = vdupq_n_s32(0);
        let chunks = a.len() / 16;
        for i in 0..chunks {
            let av = vld1q_s8(a.as_ptr().add(i * 16));
            let bv = vld1q_s8(b.as_ptr().add(i * 16));
            let alo = vaddq_s16(vmovl_s8(vget_low_s8(av)), off);
            let ahi = vaddq_s16(vmovl_s8(vget_high_s8(av)), off);
            let blo = vmovl_s8(vget_low_s8(bv));
            let bhi = vmovl_s8(vget_high_s8(bv));
            acc = vmlal_s16(acc, vget_low_s16(alo), vget_low_s16(blo));
            acc = vmlal_s16(acc, vget_high_s16(alo), vget_high_s16(blo));
            acc = vmlal_s16(acc, vget_low_s16(ahi), vget_low_s16(bhi));
            acc = vmlal_s16(acc, vget_high_s16(ahi), vget_high_s16(bhi));
        }
        let mut sum = vaddvq_s32(acc);
        for i in chunks * 16..a.len() {
            sum += (i32::from(a[i]) + offset) * i32::from(b[i]);
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(len: usize, mul: usize, sub: i32) -> Vec<i8> {
        (0..len)
            .map(|i| ((i * mul) as i32 % 256 - sub) as i8)
            .collect()
    }

    fn scalar_dot(a: &[i8], b: &[i8], offset: i32) -> i32 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| (i32::from(x) + offset) * i32::from(y))
            .sum()
    }

    /// Every vtable (detected and portable) must agree with the scalar
    /// sum on awkward lengths (remainder tails) and extreme offsets.
    #[test]
    fn all_tiers_match_scalar_dots() {
        let tiers: Vec<&'static KernelVTable> = vec![&PORTABLE, detect()];
        for vt in tiers {
            for len in [0, 1, 15, 16, 17, 31, 32, 33, 63, 64, 100, 257] {
                let a = pattern(len, 37, 128);
                let b = pattern(len, 91, 127);
                assert_eq!(
                    (vt.dot_i8)(&a, &b),
                    scalar_dot(&a, &b, 0),
                    "{} len {len}",
                    vt.name
                );
                for offset in [-128, -1, 0, 7, 128] {
                    assert_eq!(
                        (vt.dot_i8_offset)(&a, &b, offset),
                        scalar_dot(&a, &b, offset),
                        "{} len {len} offset {offset}",
                        vt.name
                    );
                }
                let rows = [
                    pattern(len, 3, 120),
                    pattern(len, 5, 10),
                    pattern(len, 7, 200),
                    pattern(len, 11, 64),
                ];
                let row_refs = [&rows[0][..], &rows[1][..], &rows[2][..], &rows[3][..]];
                for offset in [-128, 0, 53, 128] {
                    let got = (vt.dot_i8_offset_x4)(&a, row_refs, offset);
                    for (r, row) in row_refs.iter().enumerate() {
                        assert_eq!(
                            got[r],
                            scalar_dot(&a, row, offset),
                            "{} len {len} offset {offset} row {r}",
                            vt.name
                        );
                    }
                }
            }
        }
    }

    /// An offset outside the i16-foldable range must still be exact
    /// (the SIMD tiers fall back to the portable i32 loop for it).
    #[test]
    fn oversized_offsets_stay_exact() {
        let vt = detect();
        let a = pattern(70, 13, 100);
        let b = pattern(70, 29, 150);
        for offset in [-100_000, -129, 129, 3_000] {
            assert_eq!(
                (vt.dot_i8_offset)(&a, &b, offset),
                scalar_dot(&a, &b, offset)
            );
            let rows = [&b[..], &b[..], &a[..], &b[..]];
            let got = (vt.dot_i8_offset_x4)(&a, rows, offset);
            for (r, row) in rows.iter().enumerate() {
                assert_eq!(got[r], scalar_dot(&a, row, offset), "row {r}");
            }
        }
    }

    #[test]
    fn detect_is_stable_and_named() {
        let first = detect();
        assert!(std::ptr::eq(first, detect()), "detection must be cached");
        assert!(["portable", "avx2", "neon"].contains(&first.name));
        #[cfg(target_arch = "x86_64")]
        if is_x86_feature_detected!("avx2") {
            assert_eq!(first.name, "avx2");
        }
    }
}
