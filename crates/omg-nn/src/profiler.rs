//! Optional per-op profiling for the [`Interpreter`](crate::interpreter::Interpreter).
//!
//! Profiling is **off by default** and costs one branch per step when
//! disabled. When enabled, each compiled step's wall time is accumulated
//! into a fixed-size table (allocated once at
//! [`enable_profiling`](crate::interpreter::Interpreter::enable_profiling)
//! time, never on the invoke path — the zero-allocation guarantee holds
//! with the profiler on). A [`Profile`] snapshot then names the dominant
//! kernel per invoke, e.g. `conv2d` for the paper's `tiny_conv` model.
//!
//! Timestamps come from [`omg_obs::monotonic_ns`] — the same process-wide
//! monotonic clock the serving flight recorder uses, so per-op times can
//! be correlated with a merged serve trace.

/// Per-step accumulator table. Lives inside the interpreter while
/// profiling is enabled; indexed by compiled-step position, so recording
/// is two integer adds with no lookup.
#[derive(Debug)]
pub(crate) struct Profiler {
    pub(crate) steps: Vec<StepStat>,
    pub(crate) invokes: u64,
}

#[derive(Debug)]
pub(crate) struct StepStat {
    pub(crate) kernel: &'static str,
    pub(crate) calls: u64,
    pub(crate) total_ns: u64,
}

impl Profiler {
    pub(crate) fn new(kernels: Vec<&'static str>) -> Self {
        Profiler {
            steps: kernels
                .into_iter()
                .map(|kernel| StepStat {
                    kernel,
                    calls: 0,
                    total_ns: 0,
                })
                .collect(),
            invokes: 0,
        }
    }

    /// Hot-path record: no allocation, no branching beyond the caller's
    /// `is_some` check.
    #[inline]
    pub(crate) fn record_step(&mut self, step: usize, elapsed_ns: u64) {
        let stat = &mut self.steps[step];
        stat.calls += 1;
        stat.total_ns += elapsed_ns;
    }

    pub(crate) fn snapshot(&self) -> Profile {
        Profile {
            entries: self
                .steps
                .iter()
                .enumerate()
                .map(|(step, s)| ProfileEntry {
                    step,
                    kernel: s.kernel,
                    calls: s.calls,
                    total_ns: s.total_ns,
                })
                .collect(),
            invokes: self.invokes,
        }
    }
}

/// Timing for one compiled interpreter step, accumulated across invokes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Position in the compiled execution plan.
    pub step: usize,
    /// Kernel executed at this step: `conv2d`, `depthwise_conv2d`,
    /// `fully_connected`, `max_pool2d`, `avg_pool2d`, `softmax`, or
    /// `reshape`.
    pub kernel: &'static str,
    /// How many times the step ran (= invokes since profiling enabled).
    pub calls: u64,
    /// Total wall time spent in the step across all calls.
    pub total_ns: u64,
}

impl ProfileEntry {
    /// Mean wall time per call, or zero when the step never ran.
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.calls).unwrap_or(0)
    }
}

/// A snapshot of per-op timing taken by
/// [`Interpreter::profile`](crate::interpreter::Interpreter::profile).
#[derive(Debug, Clone)]
pub struct Profile {
    /// One entry per compiled step, in execution order.
    pub entries: Vec<ProfileEntry>,
    /// Completed invokes since profiling was (re-)enabled.
    pub invokes: u64,
}

impl Profile {
    /// Total profiled time across all steps.
    pub fn total_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.total_ns).sum()
    }

    /// The step that dominates the invoke cost — the answer to "which
    /// kernel is hot". `None` for an empty model or before any invoke.
    pub fn dominant(&self) -> Option<&ProfileEntry> {
        self.entries
            .iter()
            .filter(|e| e.calls > 0)
            .max_by_key(|e| e.total_ns)
    }

    /// Human-readable table: one line per step, slowest first, with the
    /// share of total profiled time.
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let total = self.total_ns().max(1);
        let mut rows: Vec<&ProfileEntry> = self.entries.iter().collect();
        rows.sort_by_key(|e| std::cmp::Reverse(e.total_ns));
        let mut out = format!("per-op profile ({} invokes):\n", self.invokes);
        for e in rows {
            let _ = writeln!(
                out,
                "  step {:>2} {:<18} {:>4} calls {:>12} ns total {:>10} ns/call {:>5.1}%",
                e.step,
                e.kernel,
                e.calls,
                e.total_ns,
                e.mean_ns(),
                e.total_ns as f64 * 100.0 / total as f64,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Profile {
        let mut p = Profiler::new(vec!["conv2d", "fully_connected", "softmax"]);
        p.record_step(0, 900);
        p.record_step(1, 80);
        p.record_step(2, 20);
        p.record_step(0, 1100);
        p.record_step(1, 120);
        p.record_step(2, 30);
        p.invokes = 2;
        p.snapshot()
    }

    #[test]
    fn dominant_names_the_hot_kernel() {
        let profile = sample();
        let hot = profile.dominant().unwrap();
        assert_eq!(hot.kernel, "conv2d");
        assert_eq!(hot.calls, 2);
        assert_eq!(hot.total_ns, 2000);
        assert_eq!(hot.mean_ns(), 1000);
        assert_eq!(profile.total_ns(), 2250);
    }

    #[test]
    fn empty_profile_has_no_dominant() {
        let p = Profiler::new(vec!["conv2d"]);
        assert!(p.snapshot().dominant().is_none());
    }

    #[test]
    fn report_sorts_slowest_first() {
        let report = sample().report();
        let conv = report.find("conv2d").unwrap();
        let fc = report.find("fully_connected").unwrap();
        let sm = report.find("softmax").unwrap();
        assert!(conv < fc && fc < sm, "{report}");
        assert!(report.contains("2 invokes"), "{report}");
    }
}
