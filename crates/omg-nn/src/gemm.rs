//! Blocked int8 GEMM core and im2col packing for the fast kernels.
//!
//! This is the compute engine [`crate::kernels_fast`] lowers convolutions
//! onto: `conv2d` packs each input patch into a row of an im2col panel,
//! then a single matrix multiply against the OHWI filter matrix produces
//! every output pixel. The GEMM itself is written so LLVM autovectorizes
//! it on any target — contiguous-slice inner loops over fixed-width
//! accumulator lanes, no `std::arch` — and stays bit-exact with the
//! scalar TFLM reference pipeline:
//!
//! * all accumulation is in `i32`, where lane-reassociated sums are
//!   *exactly* the sums the reference kernels compute term by term;
//! * the asymmetric input zero point is hoisted out of the inner loop
//!   gemmlowp-style: `Σ (a_i + off) · b_i = Σ a_i·b_i + off · Σ b_i`,
//!   with the per-filter-row sums `Σ b_i` ([`row_sums`]) precomputed
//!   once per compiled step — filters are constant, so the interpreter
//!   pays for them at construction, never on the hot path;
//! * padding positions are packed as the input zero point, whose hoisted
//!   contribution `(zp + off) · b = 0` vanishes identically, matching the
//!   reference kernels' skip-the-border behaviour bit for bit.
//!
//! The only per-invoke scratch — the im2col panel — is planned into the
//! interpreter's activation arena (see [`conv_im2col_len`]), so `invoke`
//! performs no heap allocation.

use crate::quantize::FixedMultiplier;

/// Accumulator width of the vectorizable inner loops. 16 × i32 covers a
/// 512-bit vector unit and folds cleanly onto 128/256-bit ones.
pub const LANES: usize = 16;

/// Dot product of two equal-length i8 slices, widened to i32.
///
/// Fixed-width lane accumulators plus `chunks_exact` give LLVM a loop it
/// can turn into packed multiply-adds on every mainstream target.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0i32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            lanes[l] += i32::from(xa[l]) * i32::from(xb[l]);
        }
    }
    let mut acc: i32 = lanes.iter().sum();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}

/// Like [`dot_i8`] but with the asymmetric input offset applied inline:
/// `Σ (a_i + offset) · b_i`. Used where hoisting via row sums would cost
/// as much as it saves (fully connected layers with batch 1).
#[inline]
pub fn dot_i8_offset(a: &[i8], b: &[i8], offset: i32) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0i32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            lanes[l] += (i32::from(xa[l]) + offset) * i32::from(xb[l]);
        }
    }
    let mut acc: i32 = lanes.iter().sum();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += (i32::from(x) + offset) * i32::from(y);
    }
    acc
}

/// Per-row sums of an `n × k` row-major i8 matrix, written into `out[..n]`.
/// One pass over the filter, amortized across every GEMM row.
pub fn row_sums(b: &[i8], n: usize, k: usize, out: &mut [i32]) {
    debug_assert!(b.len() >= n * k);
    debug_assert!(out.len() >= n);
    for (j, o) in out.iter_mut().enumerate().take(n) {
        let row = &b[j * k..][..k];
        let mut lanes = [0i32; LANES];
        let mut chunks = row.chunks_exact(LANES);
        for c in chunks.by_ref() {
            for l in 0..LANES {
                lanes[l] += i32::from(c[l]);
            }
        }
        let mut sum: i32 = lanes.iter().sum();
        for &v in chunks.remainder() {
            sum += i32::from(v);
        }
        *o = sum;
    }
}

/// Arguments for [`gemm`]: `out = requant(A · Bᵀ + bias)` with the
/// gemmlowp offset-hoisting described at module level.
#[derive(Debug)]
pub struct GemmArgs<'a> {
    /// Left matrix, `m × k` row-major (im2col panel or raw activations).
    pub a: &'a [i8],
    /// Right matrix, `n × k` row-major — one filter per row, so the
    /// product needs no transposition of the OHWI weight layout.
    pub b: &'a [i8],
    /// Per-output-channel bias, length `n`.
    pub bias: &'a [i32],
    /// Per-row sums of `b` (see [`row_sums`]), length `n`.
    pub b_row_sums: &'a [i32],
    /// Output, `m × n` row-major (NHWC pixels × channels).
    pub out: &'a mut [i8],
    /// Rows of `a` / output pixels.
    pub m: usize,
    /// Rows of `b` / output channels.
    pub n: usize,
    /// Shared inner dimension.
    pub k: usize,
    /// `-input_zero_point`.
    pub input_offset: i32,
    /// `output_zero_point`.
    pub output_offset: i32,
    /// Requantization multiplier.
    pub multiplier: FixedMultiplier,
    /// Fused activation clamp low.
    pub act_min: i8,
    /// Fused activation clamp high.
    pub act_max: i8,
}

/// Blocked int8×int8→i32 matrix multiply with fused requantization.
///
/// B is walked in column panels so a panel's rows stay cache-hot across
/// every row of A; each `(i, j)` cell is a contiguous [`dot_i8`] plus the
/// hoisted offset and bias, requantized straight into the i8 output.
pub fn gemm(args: GemmArgs<'_>) {
    let GemmArgs {
        a,
        b,
        bias,
        b_row_sums,
        out,
        m,
        n,
        k,
        input_offset,
        output_offset,
        multiplier,
        act_min,
        act_max,
    } = args;
    debug_assert!(a.len() >= m * k);
    debug_assert!(b.len() >= n * k);
    debug_assert!(bias.len() >= n && b_row_sums.len() >= n);
    debug_assert!(out.len() >= m * n);
    let (lo, hi) = (i32::from(act_min), i32::from(act_max));
    // Column-panel width: enough rows of B to amortize streaming A, small
    // enough that a panel of realistic k stays in L1.
    const NB: usize = 8;
    let mut jb = 0;
    while jb < n {
        let jn = NB.min(n - jb);
        for i in 0..m {
            let a_row = &a[i * k..][..k];
            let out_cells = &mut out[i * n + jb..][..jn];
            for (jj, cell) in out_cells.iter_mut().enumerate() {
                let j = jb + jj;
                let acc = dot_i8(a_row, &b[j * k..][..k]) + input_offset * b_row_sums[j] + bias[j];
                let scaled = multiplier.apply(acc) + output_offset;
                *cell = scaled.clamp(lo, hi) as i8;
            }
        }
        jb += NB;
    }
}

/// Whether a convolution needs an im2col panel at all. A 1×1 kernel at
/// stride 1 with no padding reads the NHWC input as the `m × k` matrix
/// directly (`m = h·w`, `k = c`), skipping the pack entirely.
pub fn conv_uses_im2col(
    filter_shape: [usize; 4],
    stride: (usize, usize),
    pad: (usize, usize),
) -> bool {
    !(filter_shape[1] == 1 && filter_shape[2] == 1 && stride == (1, 1) && pad == (0, 0))
}

/// im2col panel length in bytes for one batch of a convolution (zero when
/// [`conv_uses_im2col`] says the input is usable in place).
pub fn conv_im2col_len(
    filter_shape: [usize; 4],
    output_shape: [usize; 4],
    stride: (usize, usize),
    pad: (usize, usize),
) -> usize {
    if conv_uses_im2col(filter_shape, stride, pad) {
        output_shape[1] * output_shape[2] * filter_shape[1] * filter_shape[2] * filter_shape[3]
    } else {
        0
    }
}

/// Packs one batch's NHWC input plane into an im2col panel: row `(oy, ox)`
/// holds the `(ky, kx, ic)`-ordered patch under that output pixel, so a
/// flattened OHWI filter row dots against it directly.
///
/// Out-of-bounds positions are filled with `pad_value` (the input zero
/// point), whose hoisted-offset contribution is exactly zero. Interior
/// rows collapse to a single `copy_from_slice` per kernel row.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &[i8],
    in_h: usize,
    in_w: usize,
    in_c: usize,
    k_h: usize,
    k_w: usize,
    stride: (usize, usize),
    pad: (usize, usize),
    out_h: usize,
    out_w: usize,
    pad_value: i8,
    col: &mut [i8],
) {
    let patch = k_h * k_w * in_c;
    debug_assert!(input.len() >= in_h * in_w * in_c);
    debug_assert!(col.len() >= out_h * out_w * patch);
    for oy in 0..out_h {
        let iy0 = (oy * stride.0) as isize - pad.0 as isize;
        for ox in 0..out_w {
            let ix0 = (ox * stride.1) as isize - pad.1 as isize;
            let dst = &mut col[(oy * out_w + ox) * patch..][..patch];
            for ky in 0..k_h {
                let iy = iy0 + ky as isize;
                let row_dst = &mut dst[ky * k_w * in_c..][..k_w * in_c];
                if iy < 0 || iy >= in_h as isize {
                    row_dst.fill(pad_value);
                    continue;
                }
                let src_row = &input[(iy as usize * in_w) * in_c..][..in_w * in_c];
                // kx is valid iff 0 <= ix0 + kx < in_w.
                let kx_lo = (-ix0).clamp(0, k_w as isize) as usize;
                let kx_hi = (in_w as isize - ix0).clamp(0, k_w as isize) as usize;
                row_dst[..kx_lo * in_c].fill(pad_value);
                row_dst[kx_hi * in_c..].fill(pad_value);
                if kx_lo < kx_hi {
                    let src_off = (ix0 + kx_lo as isize) as usize * in_c;
                    row_dst[kx_lo * in_c..kx_hi * in_c]
                        .copy_from_slice(&src_row[src_off..src_off + (kx_hi - kx_lo) * in_c]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_products_match_scalar() {
        let a: Vec<i8> = (0..100).map(|i| (i % 23) as i8 - 11).collect();
        let b: Vec<i8> = (0..100).map(|i| (i % 17) as i8 - 8).collect();
        let scalar: i32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(dot_i8(&a, &b), scalar);
        let off = 37;
        let scalar_off: i32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (i32::from(x) + off) * i32::from(y))
            .sum();
        assert_eq!(dot_i8_offset(&a, &b, off), scalar_off);
        // Hoisting identity: dot + off * sum(b).
        let bsum: i32 = b.iter().map(|&v| i32::from(v)).sum();
        assert_eq!(dot_i8(&a, &b) + off * bsum, scalar_off);
    }

    #[test]
    fn row_sums_match_scalar() {
        let b: Vec<i8> = (0..60).map(|i| (i % 29) as i8 - 14).collect();
        let mut sums = [0i32; 3];
        row_sums(&b, 3, 20, &mut sums);
        for j in 0..3 {
            let want: i32 = b[j * 20..][..20].iter().map(|&v| i32::from(v)).sum();
            assert_eq!(sums[j], want);
        }
    }

    #[test]
    fn gemm_identity() {
        // 2x2 identity B, unit multiplier: out == a (k = n = 2).
        let a = [3i8, -4, 5, 6];
        let b = [1i8, 0, 0, 1];
        let mut sums = [0i32; 2];
        row_sums(&b, 2, 2, &mut sums);
        let mut out = [0i8; 4];
        gemm(GemmArgs {
            a: &a,
            b: &b,
            bias: &[0, 0],
            b_row_sums: &sums,
            out: &mut out,
            m: 2,
            n: 2,
            k: 2,
            input_offset: 0,
            output_offset: 0,
            multiplier: FixedMultiplier::from_real(0.999_999_999).unwrap(),
            act_min: -128,
            act_max: 127,
        });
        assert_eq!(out, a);
    }

    #[test]
    fn im2col_packs_valid_window() {
        // 3x3 single-channel input, 2x2 kernel, stride 1, no padding:
        // first patch is the top-left 2x2 block.
        let input: Vec<i8> = (1..=9).collect();
        let mut col = vec![0i8; 4 * 4];
        im2col(&input, 3, 3, 1, 2, 2, (1, 1), (0, 0), 2, 2, 0, &mut col);
        assert_eq!(&col[0..4], &[1, 2, 4, 5]);
        assert_eq!(&col[12..16], &[5, 6, 8, 9]);
    }

    #[test]
    fn im2col_fills_padding_with_zero_point() {
        // 2x2 input, 3x3 kernel, SAME padding (pad 1): the corner patch
        // has 5 padded positions.
        let input = [1i8, 2, 3, 4];
        let mut col = vec![99i8; 4 * 9];
        im2col(&input, 2, 2, 1, 3, 3, (1, 1), (1, 1), 2, 2, -7, &mut col);
        // Patch for output (0,0): rows ky=0 all pad; ky=1 -> pad,1,2;
        // ky=2 -> pad,3,4.
        assert_eq!(&col[0..9], &[-7, -7, -7, -7, 1, 2, -7, 3, 4]);
    }
}
