//! Blocked int8 GEMM core and im2col packing for the fast kernels.
//!
//! This is the compute engine [`crate::kernels_fast`] lowers convolutions
//! onto: `conv2d` packs each input patch into a row of an im2col panel,
//! then a single matrix multiply against the OHWI filter matrix produces
//! every output pixel. The GEMM itself is written so LLVM autovectorizes
//! it on any target — contiguous-slice inner loops over fixed-width
//! accumulator lanes, no `std::arch` — and stays bit-exact with the
//! scalar TFLM reference pipeline:
//!
//! * all accumulation is in `i32`, where lane-reassociated sums are
//!   *exactly* the sums the reference kernels compute term by term;
//! * the asymmetric input zero point is hoisted out of the inner loop
//!   gemmlowp-style: `Σ (a_i + off) · b_i = Σ a_i·b_i + off · Σ b_i`,
//!   with the per-filter-row sums `Σ b_i` ([`row_sums`]) precomputed
//!   once per compiled step — filters are constant, so the interpreter
//!   pays for them at construction, never on the hot path;
//! * padding positions are packed as the input zero point, whose hoisted
//!   contribution `(zp + off) · b = 0` vanishes identically, matching the
//!   reference kernels' skip-the-border behaviour bit for bit.
//!
//! The only per-invoke scratch — the im2col panel — is planned into the
//! interpreter's activation arena (see [`conv_im2col_len`]), so `invoke`
//! performs no heap allocation.
//!
//! Two orthogonal accelerators sit on top of the portable core:
//!
//! * **SIMD dispatch** — [`gemm_with`] takes a [`KernelVTable`]
//!   (see [`crate::arch`]) and routes every inner dot product through it,
//!   so the AVX2/NEON tiers slot under `conv2d` and the im2col path
//!   without changing a single loop here. [`gemm`] uses the best detected
//!   tier.
//! * **Row-panel threading** — when the process-wide [`thread_budget`] is
//!   raised above one, [`gemm_with`] splits the `m` output rows into
//!   contiguous panels and runs them on scoped threads. Rows are
//!   independent (each output cell is one dot product plus requantize),
//!   so the split is bit-exact by construction; scoped threads join
//!   before the call returns, so a panicking panel can never leave a
//!   dangling borrow of the arena. The budget defaults to **1** (no
//!   threads spawned, preserving the interpreter's zero-allocation
//!   invoke) and composes with `omg-serve`'s thread-per-device workers:
//!   raise it only when devices are scarcer than cores (see
//!   `ServeConfig::kernel_threads`).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::arch::{self, KernelVTable};
use crate::quantize::FixedMultiplier;

/// Hard cap on [`thread_budget`]: a misconfigured env var cannot fork
/// bomb a worker fleet.
pub const MAX_GEMM_THREADS: usize = 64;

/// Below this many multiply-accumulates a GEMM never splits: spawning
/// threads costs tens of microseconds, which tiny proptest shapes and
/// single-row fully-connected layers would pay without recouping.
const PAR_MIN_MACS: usize = 1 << 18;

/// Minimum output rows per panel worth a thread of its own.
const PAR_MIN_ROWS: usize = 32;

/// 0 = not yet initialized (first read resolves `OMG_GEMM_THREADS`).
static THREAD_BUDGET: AtomicUsize = AtomicUsize::new(0);

/// Global-registry gauge mirroring the resolved budget, so metrics
/// snapshots show the knob kernels are actually running with.
fn budget_gauge() -> &'static omg_obs::Gauge {
    static GAUGE: std::sync::OnceLock<omg_obs::Gauge> = std::sync::OnceLock::new();
    GAUGE.get_or_init(|| {
        omg_obs::global().gauge(
            "omg_nn_gemm_thread_budget",
            "Process-wide GEMM kernel thread budget",
        )
    })
}

/// The process-wide GEMM thread budget: the maximum number of scoped
/// threads one [`gemm`] call may use. Defaults to `OMG_GEMM_THREADS` if
/// set (clamped to `1..=`[`MAX_GEMM_THREADS`]), else 1.
pub fn thread_budget() -> usize {
    match THREAD_BUDGET.load(Ordering::Relaxed) {
        0 => {
            let initial = std::env::var("OMG_GEMM_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .map_or(1, |n| n.clamp(1, MAX_GEMM_THREADS));
            // Racing initializers compute the same value; keep whichever
            // landed first so a concurrent `set_thread_budget` wins.
            let _ =
                THREAD_BUDGET.compare_exchange(0, initial, Ordering::Relaxed, Ordering::Relaxed);
            let resolved = THREAD_BUDGET.load(Ordering::Relaxed);
            budget_gauge().set(resolved as i64);
            resolved
        }
        n => n,
    }
}

/// Sets the process-wide GEMM thread budget (clamped to
/// `1..=`[`MAX_GEMM_THREADS`]), returning the previous value. An explicit
/// call overrides `OMG_GEMM_THREADS`; serving runtimes set this from
/// `ServeConfig::kernel_threads` so kernel threads and device workers
/// share one knob instead of oversubscribing each other.
pub fn set_thread_budget(threads: usize) -> usize {
    let clamped = threads.clamp(1, MAX_GEMM_THREADS);
    budget_gauge().set(clamped as i64);
    match THREAD_BUDGET.swap(clamped, Ordering::Relaxed) {
        0 => 1,
        prev => prev,
    }
}

/// Accumulator width of the vectorizable inner loops. 16 × i32 covers a
/// 512-bit vector unit and folds cleanly onto 128/256-bit ones.
pub const LANES: usize = 16;

/// Dot product of two equal-length i8 slices, widened to i32.
///
/// Fixed-width lane accumulators plus `chunks_exact` give LLVM a loop it
/// can turn into packed multiply-adds on every mainstream target.
#[inline]
pub fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0i32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            lanes[l] += i32::from(xa[l]) * i32::from(xb[l]);
        }
    }
    let mut acc: i32 = lanes.iter().sum();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += i32::from(x) * i32::from(y);
    }
    acc
}

/// Like [`dot_i8`] but with the asymmetric input offset applied inline:
/// `Σ (a_i + offset) · b_i`. Used where hoisting via row sums would cost
/// as much as it saves (fully connected layers with batch 1).
#[inline]
pub fn dot_i8_offset(a: &[i8], b: &[i8], offset: i32) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0i32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..LANES {
            lanes[l] += (i32::from(xa[l]) + offset) * i32::from(xb[l]);
        }
    }
    let mut acc: i32 = lanes.iter().sum();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        acc += (i32::from(x) + offset) * i32::from(y);
    }
    acc
}

/// Per-row sums of an `n × k` row-major i8 matrix, written into `out[..n]`.
/// One pass over the filter, amortized across every GEMM row.
pub fn row_sums(b: &[i8], n: usize, k: usize, out: &mut [i32]) {
    debug_assert!(b.len() >= n * k);
    debug_assert!(out.len() >= n);
    for (j, o) in out.iter_mut().enumerate().take(n) {
        let row = &b[j * k..][..k];
        let mut lanes = [0i32; LANES];
        let mut chunks = row.chunks_exact(LANES);
        for c in chunks.by_ref() {
            for l in 0..LANES {
                lanes[l] += i32::from(c[l]);
            }
        }
        let mut sum: i32 = lanes.iter().sum();
        for &v in chunks.remainder() {
            sum += i32::from(v);
        }
        *o = sum;
    }
}

/// Arguments for [`gemm`]: `out = requant(A · Bᵀ + bias)` with the
/// gemmlowp offset-hoisting described at module level.
#[derive(Debug)]
pub struct GemmArgs<'a> {
    /// Left matrix, `m × k` row-major (im2col panel or raw activations).
    pub a: &'a [i8],
    /// Right matrix, `n × k` row-major — one filter per row, so the
    /// product needs no transposition of the OHWI weight layout.
    pub b: &'a [i8],
    /// Per-output-channel bias, length `n`.
    pub bias: &'a [i32],
    /// Per-row sums of `b` (see [`row_sums`]), length `n`.
    pub b_row_sums: &'a [i32],
    /// Output, `m × n` row-major (NHWC pixels × channels).
    pub out: &'a mut [i8],
    /// Rows of `a` / output pixels.
    pub m: usize,
    /// Rows of `b` / output channels.
    pub n: usize,
    /// Shared inner dimension.
    pub k: usize,
    /// `-input_zero_point`.
    pub input_offset: i32,
    /// `output_zero_point`.
    pub output_offset: i32,
    /// Requantization multiplier.
    pub multiplier: FixedMultiplier,
    /// Fused activation clamp low.
    pub act_min: i8,
    /// Fused activation clamp high.
    pub act_max: i8,
}

/// Blocked int8×int8→i32 matrix multiply with fused requantization,
/// using the best dot-product tier the CPU supports
/// ([`crate::arch::detect`]). Equivalent to
/// `gemm_with(arch::detect(), args)`.
pub fn gemm(args: GemmArgs<'_>) {
    gemm_with(arch::detect(), args);
}

/// [`gemm`] with an explicit dispatch tier.
///
/// B is walked in column panels so a panel's rows stay cache-hot across
/// every row of A; each `(i, j)` cell is a contiguous `dot_i8` plus the
/// hoisted offset and bias, requantized straight into the i8 output.
/// When [`thread_budget`] exceeds one and the problem clears the
/// minimum-work thresholds, the `m` rows are split into contiguous
/// panels executed on scoped threads — bit-exact, since every output row
/// is computed by exactly the same code either way.
pub fn gemm_with(vt: &'static KernelVTable, args: GemmArgs<'_>) {
    let GemmArgs {
        a,
        b,
        bias,
        b_row_sums,
        out,
        m,
        n,
        k,
        input_offset,
        output_offset,
        multiplier,
        act_min,
        act_max,
    } = args;
    debug_assert!(a.len() >= m * k);
    debug_assert!(b.len() >= n * k);
    debug_assert!(bias.len() >= n && b_row_sums.len() >= n);
    debug_assert!(out.len() >= m * n);
    let cell = CellParams {
        input_offset,
        output_offset,
        multiplier,
        clamp: (i32::from(act_min), i32::from(act_max)),
    };
    let budget = thread_budget();
    let threads = if budget > 1 && m * n * k >= PAR_MIN_MACS {
        budget.min(m / PAR_MIN_ROWS).max(1)
    } else {
        1
    };
    if threads <= 1 {
        gemm_rows(
            vt,
            &a[..m * k],
            b,
            bias,
            b_row_sums,
            &mut out[..m * n],
            n,
            k,
            cell,
        );
        return;
    }
    std::thread::scope(|scope| {
        let mut a_rest: &[i8] = &a[..m * k];
        let mut out_rest: &mut [i8] = &mut out[..m * n];
        for t in 0..threads {
            let rows = m / threads + usize::from(t < m % threads);
            let (a_panel, a_tail) = a_rest.split_at(rows * k);
            a_rest = a_tail;
            let (out_panel, out_tail) = std::mem::take(&mut out_rest).split_at_mut(rows * n);
            out_rest = out_tail;
            scope.spawn(move || gemm_rows(vt, a_panel, b, bias, b_row_sums, out_panel, n, k, cell));
        }
    });
}

/// Requantization parameters shared by every output cell.
#[derive(Clone, Copy)]
struct CellParams {
    input_offset: i32,
    output_offset: i32,
    multiplier: FixedMultiplier,
    clamp: (i32, i32),
}

/// One contiguous panel of output rows: `a_panel` is `rows × k`,
/// `out_panel` is `rows × n`.
#[allow(clippy::too_many_arguments)]
fn gemm_rows(
    vt: &KernelVTable,
    a_panel: &[i8],
    b: &[i8],
    bias: &[i32],
    b_row_sums: &[i32],
    out_panel: &mut [i8],
    n: usize,
    k: usize,
    cell: CellParams,
) {
    let rows = out_panel.len() / n.max(1);
    let (lo, hi) = cell.clamp;
    // Column-panel width: enough rows of B to amortize streaming A, small
    // enough that a panel of realistic k stays in L1.
    const NB: usize = 8;
    let mut jb = 0;
    while jb < n {
        let jn = NB.min(n - jb);
        for i in 0..rows {
            let a_row = &a_panel[i * k..][..k];
            let out_cells = &mut out_panel[i * n + jb..][..jn];
            for (jj, out_cell) in out_cells.iter_mut().enumerate() {
                let j = jb + jj;
                let acc = (vt.dot_i8)(a_row, &b[j * k..][..k])
                    + cell.input_offset * b_row_sums[j]
                    + bias[j];
                let scaled = cell.multiplier.apply(acc) + cell.output_offset;
                *out_cell = scaled.clamp(lo, hi) as i8;
            }
        }
        jb += NB;
    }
}

/// Whether a convolution needs an im2col panel at all. A 1×1 kernel at
/// stride 1 with no padding reads the NHWC input as the `m × k` matrix
/// directly (`m = h·w`, `k = c`), skipping the pack entirely.
pub fn conv_uses_im2col(
    filter_shape: [usize; 4],
    stride: (usize, usize),
    pad: (usize, usize),
) -> bool {
    !(filter_shape[1] == 1 && filter_shape[2] == 1 && stride == (1, 1) && pad == (0, 0))
}

/// im2col panel length in bytes for one batch of a convolution (zero when
/// [`conv_uses_im2col`] says the input is usable in place).
pub fn conv_im2col_len(
    filter_shape: [usize; 4],
    output_shape: [usize; 4],
    stride: (usize, usize),
    pad: (usize, usize),
) -> usize {
    if conv_uses_im2col(filter_shape, stride, pad) {
        output_shape[1] * output_shape[2] * filter_shape[1] * filter_shape[2] * filter_shape[3]
    } else {
        0
    }
}

/// Packs one batch's NHWC input plane into an im2col panel: row `(oy, ox)`
/// holds the `(ky, kx, ic)`-ordered patch under that output pixel, so a
/// flattened OHWI filter row dots against it directly.
///
/// Out-of-bounds positions are filled with `pad_value` (the input zero
/// point), whose hoisted-offset contribution is exactly zero. Interior
/// rows collapse to a single `copy_from_slice` per kernel row.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    input: &[i8],
    in_h: usize,
    in_w: usize,
    in_c: usize,
    k_h: usize,
    k_w: usize,
    stride: (usize, usize),
    pad: (usize, usize),
    out_h: usize,
    out_w: usize,
    pad_value: i8,
    col: &mut [i8],
) {
    let patch = k_h * k_w * in_c;
    debug_assert!(input.len() >= in_h * in_w * in_c);
    debug_assert!(col.len() >= out_h * out_w * patch);
    for oy in 0..out_h {
        let iy0 = (oy * stride.0) as isize - pad.0 as isize;
        for ox in 0..out_w {
            let ix0 = (ox * stride.1) as isize - pad.1 as isize;
            let dst = &mut col[(oy * out_w + ox) * patch..][..patch];
            for ky in 0..k_h {
                let iy = iy0 + ky as isize;
                let row_dst = &mut dst[ky * k_w * in_c..][..k_w * in_c];
                if iy < 0 || iy >= in_h as isize {
                    row_dst.fill(pad_value);
                    continue;
                }
                let src_row = &input[(iy as usize * in_w) * in_c..][..in_w * in_c];
                // kx is valid iff 0 <= ix0 + kx < in_w.
                let kx_lo = (-ix0).clamp(0, k_w as isize) as usize;
                let kx_hi = (in_w as isize - ix0).clamp(0, k_w as isize) as usize;
                row_dst[..kx_lo * in_c].fill(pad_value);
                row_dst[kx_hi * in_c..].fill(pad_value);
                if kx_lo < kx_hi {
                    let src_off = (ix0 + kx_lo as isize) as usize * in_c;
                    row_dst[kx_lo * in_c..kx_hi * in_c]
                        .copy_from_slice(&src_row[src_off..src_off + (kx_hi - kx_lo) * in_c]);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_products_match_scalar() {
        let a: Vec<i8> = (0..100).map(|i| (i % 23) as i8 - 11).collect();
        let b: Vec<i8> = (0..100).map(|i| (i % 17) as i8 - 8).collect();
        let scalar: i32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| i32::from(x) * i32::from(y))
            .sum();
        assert_eq!(dot_i8(&a, &b), scalar);
        let off = 37;
        let scalar_off: i32 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (i32::from(x) + off) * i32::from(y))
            .sum();
        assert_eq!(dot_i8_offset(&a, &b, off), scalar_off);
        // Hoisting identity: dot + off * sum(b).
        let bsum: i32 = b.iter().map(|&v| i32::from(v)).sum();
        assert_eq!(dot_i8(&a, &b) + off * bsum, scalar_off);
    }

    #[test]
    fn row_sums_match_scalar() {
        let b: Vec<i8> = (0..60).map(|i| (i % 29) as i8 - 14).collect();
        let mut sums = [0i32; 3];
        row_sums(&b, 3, 20, &mut sums);
        for j in 0..3 {
            let want: i32 = b[j * 20..][..20].iter().map(|&v| i32::from(v)).sum();
            assert_eq!(sums[j], want);
        }
    }

    #[test]
    fn gemm_identity() {
        // 2x2 identity B, unit multiplier: out == a (k = n = 2).
        let a = [3i8, -4, 5, 6];
        let b = [1i8, 0, 0, 1];
        let mut sums = [0i32; 2];
        row_sums(&b, 2, 2, &mut sums);
        let mut out = [0i8; 4];
        gemm(GemmArgs {
            a: &a,
            b: &b,
            bias: &[0, 0],
            b_row_sums: &sums,
            out: &mut out,
            m: 2,
            n: 2,
            k: 2,
            input_offset: 0,
            output_offset: 0,
            multiplier: FixedMultiplier::from_real(0.999_999_999).unwrap(),
            act_min: -128,
            act_max: 127,
        });
        assert_eq!(out, a);
    }

    /// Budget accounting and row-panel threading in one test: the global
    /// budget is process-wide state, so probing it from two concurrent
    /// `#[test]`s would race.
    ///
    /// Threading must be invisible in the output: same GEMM, budgets
    /// 1/2/3/4, bit-identical results on a shape large enough to split.
    #[test]
    fn threaded_gemm_is_bit_exact_and_budget_is_clamped() {
        let prev = set_thread_budget(4);
        assert_eq!(thread_budget(), 4);
        assert_eq!(set_thread_budget(0), 4); // clamped up to 1
        assert_eq!(thread_budget(), 1);
        assert_eq!(set_thread_budget(10_000), 1); // clamped to the cap
        assert_eq!(thread_budget(), MAX_GEMM_THREADS);
        set_thread_budget(prev);
        let (m, n, k) = (256, 16, 64); // 262144 MACs: clears PAR_MIN_MACS
        let a: Vec<i8> = (0..m * k).map(|i| ((i * 13) % 256) as u8 as i8).collect();
        let b: Vec<i8> = (0..n * k).map(|i| ((i * 29) % 256) as u8 as i8).collect();
        let bias: Vec<i32> = (0..n as i32).map(|i| i * 11 - 60).collect();
        let mut sums = vec![0i32; n];
        row_sums(&b, n, k, &mut sums);
        let run = |budget: usize| -> Vec<i8> {
            let prev = set_thread_budget(budget);
            let mut out = vec![0i8; m * n];
            gemm(GemmArgs {
                a: &a,
                b: &b,
                bias: &bias,
                b_row_sums: &sums,
                out: &mut out,
                m,
                n,
                k,
                input_offset: 7,
                output_offset: -3,
                multiplier: FixedMultiplier::from_real(0.0017).unwrap(),
                act_min: -128,
                act_max: 127,
            });
            set_thread_budget(prev);
            out
        };
        let single = run(1);
        assert_eq!(run(2), single);
        assert_eq!(run(4), single);
        // Odd splits too: m % threads != 0 exercises the uneven panels.
        assert_eq!(run(3), single);
    }

    #[test]
    fn im2col_packs_valid_window() {
        // 3x3 single-channel input, 2x2 kernel, stride 1, no padding:
        // first patch is the top-left 2x2 block.
        let input: Vec<i8> = (1..=9).collect();
        let mut col = vec![0i8; 4 * 4];
        im2col(&input, 3, 3, 1, 2, 2, (1, 1), (0, 0), 2, 2, 0, &mut col);
        assert_eq!(&col[0..4], &[1, 2, 4, 5]);
        assert_eq!(&col[12..16], &[5, 6, 8, 9]);
    }

    #[test]
    fn im2col_fills_padding_with_zero_point() {
        // 2x2 input, 3x3 kernel, SAME padding (pad 1): the corner patch
        // has 5 padded positions.
        let input = [1i8, 2, 3, 4];
        let mut col = vec![99i8; 4 * 9];
        im2col(&input, 2, 2, 1, 3, 3, (1, 1), (1, 1), 2, 2, -7, &mut col);
        // Patch for output (0,0): rows ky=0 all pad; ky=1 -> pad,1,2;
        // ky=2 -> pad,3,4.
        assert_eq!(&col[0..9], &[-7, -7, -7, -7, 1, 2, -7, 3, 4]);
    }
}
