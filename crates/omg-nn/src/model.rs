//! Model graphs: operators, tensors, constant buffers, and the builder.
//!
//! A [`Model`] is the in-memory equivalent of a `.tflite` micro model: a
//! flat list of tensors (activations and constants), a list of weight
//! buffers, and a topologically ordered list of ops. The paper's
//! `tiny_conv` keyword-spotting network is one Conv2D (8 filters of 8×10,
//! stride 2×2) with fused ReLU, a FullyConnected layer to 12 labels, and a
//! Softmax (paper §VI).

use std::sync::Arc;

use crate::buffer::{AlignedBytes, ByteView, BUFFER_ALIGN};
use crate::error::{NnError, Result};
use crate::quantize::QuantParams;
use crate::tensor::{DType, TensorId, TensorInfo};

/// Spatial padding scheme (TensorFlow semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Padding {
    /// Output size `ceil(in / stride)`; zero-pads as needed.
    Same,
    /// No padding; output size `ceil((in - k + 1) / stride)`.
    Valid,
}

impl Padding {
    pub(crate) fn tag(self) -> u8 {
        match self {
            Padding::Same => 0,
            Padding::Valid => 1,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Padding::Same),
            1 => Some(Padding::Valid),
            _ => None,
        }
    }
}

/// Fused activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity.
    None,
    /// Rectified linear unit, fused into the producing op.
    Relu,
}

impl Activation {
    pub(crate) fn tag(self) -> u8 {
        match self {
            Activation::None => 0,
            Activation::Relu => 1,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Option<Self> {
        match tag {
            0 => Some(Activation::None),
            1 => Some(Activation::Relu),
            _ => None,
        }
    }
}

/// One operator in the graph. Tensor ids index into the model's tensor list.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// 2-D convolution, NHWC input, OHWI filter.
    Conv2D {
        /// Input activation tensor.
        input: TensorId,
        /// Filter weights `[out_c, kh, kw, in_c]`.
        filter: TensorId,
        /// Per-output-channel bias (i32).
        bias: TensorId,
        /// Output activation tensor.
        output: TensorId,
        /// Vertical stride.
        stride_h: usize,
        /// Horizontal stride.
        stride_w: usize,
        /// Padding scheme.
        padding: Padding,
        /// Fused activation.
        activation: Activation,
    },
    /// Depthwise 2-D convolution (filter `[1, kh, kw, channels]`).
    DepthwiseConv2D {
        /// Input activation tensor.
        input: TensorId,
        /// Filter weights `[1, kh, kw, in_c * multiplier]`.
        filter: TensorId,
        /// Per-channel bias (i32).
        bias: TensorId,
        /// Output activation tensor.
        output: TensorId,
        /// Vertical stride.
        stride_h: usize,
        /// Horizontal stride.
        stride_w: usize,
        /// Channel multiplier.
        depth_multiplier: usize,
        /// Padding scheme.
        padding: Padding,
        /// Fused activation.
        activation: Activation,
    },
    /// Fully connected layer: `output = input × filterᵀ + bias`.
    FullyConnected {
        /// Input activation tensor (flattened).
        input: TensorId,
        /// Weights `[out_features, in_features]`.
        filter: TensorId,
        /// Bias (i32).
        bias: TensorId,
        /// Output activation tensor.
        output: TensorId,
        /// Fused activation.
        activation: Activation,
    },
    /// Average pooling.
    AveragePool2D {
        /// Input activation tensor.
        input: TensorId,
        /// Output activation tensor.
        output: TensorId,
        /// Pool window height.
        filter_h: usize,
        /// Pool window width.
        filter_w: usize,
        /// Vertical stride.
        stride_h: usize,
        /// Horizontal stride.
        stride_w: usize,
        /// Padding scheme.
        padding: Padding,
    },
    /// Max pooling.
    MaxPool2D {
        /// Input activation tensor.
        input: TensorId,
        /// Output activation tensor.
        output: TensorId,
        /// Pool window height.
        filter_h: usize,
        /// Pool window width.
        filter_w: usize,
        /// Vertical stride.
        stride_h: usize,
        /// Horizontal stride.
        stride_w: usize,
        /// Padding scheme.
        padding: Padding,
    },
    /// Softmax over the last dimension; output is quantized with the fixed
    /// TFLite convention (scale 1/256, zero point −128).
    Softmax {
        /// Input logits.
        input: TensorId,
        /// Output probabilities.
        output: TensorId,
    },
    /// Shape change without data movement.
    Reshape {
        /// Input tensor.
        input: TensorId,
        /// Output tensor (same element count).
        output: TensorId,
    },
}

impl Op {
    /// Tensors read by this op.
    pub fn inputs(&self) -> Vec<TensorId> {
        match *self {
            Op::Conv2D {
                input,
                filter,
                bias,
                ..
            }
            | Op::DepthwiseConv2D {
                input,
                filter,
                bias,
                ..
            }
            | Op::FullyConnected {
                input,
                filter,
                bias,
                ..
            } => vec![input, filter, bias],
            Op::AveragePool2D { input, .. }
            | Op::MaxPool2D { input, .. }
            | Op::Softmax { input, .. }
            | Op::Reshape { input, .. } => vec![input],
        }
    }

    /// Tensor written by this op.
    pub fn output(&self) -> TensorId {
        match *self {
            Op::Conv2D { output, .. }
            | Op::DepthwiseConv2D { output, .. }
            | Op::FullyConnected { output, .. }
            | Op::AveragePool2D { output, .. }
            | Op::MaxPool2D { output, .. }
            | Op::Softmax { output, .. }
            | Op::Reshape { output, .. } => output,
        }
    }

    /// Operator name for diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Conv2D { .. } => "Conv2D",
            Op::DepthwiseConv2D { .. } => "DepthwiseConv2D",
            Op::FullyConnected { .. } => "FullyConnected",
            Op::AveragePool2D { .. } => "AveragePool2D",
            Op::MaxPool2D { .. } => "MaxPool2D",
            Op::Softmax { .. } => "Softmax",
            Op::Reshape { .. } => "Reshape",
        }
    }
}

/// Computes the output spatial size of a windowed op.
pub fn conv_output_size(input: usize, kernel: usize, stride: usize, padding: Padding) -> usize {
    match padding {
        Padding::Same => input.div_ceil(stride),
        Padding::Valid => (input.saturating_sub(kernel) + stride) / stride,
    }
}

/// Computes `(pad_before, pad_after)` for a dimension under SAME padding.
pub fn same_padding(input: usize, kernel: usize, stride: usize) -> (usize, usize) {
    let output = input.div_ceil(stride);
    let total = ((output - 1) * stride + kernel).saturating_sub(input);
    (total / 2, total - total / 2)
}

/// Per-buffer layout promises carried in the OMGM v2 header, so vector
/// kernels can assume alignment and row pitch without re-deriving them
/// from tensor shapes at dispatch time.
///
/// Hints are *claims the blob makes about its own layout*;
/// [`Model::validate`] rejects any hint the actual section placement and
/// tensor shapes do not back up, so a hint in a validated model is a fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferLayout {
    /// Guaranteed alignment (power of two, ≤ [`BUFFER_ALIGN`]) of the
    /// buffer's first byte.
    pub align: u32,
    /// Bytes between consecutive leading-dimension rows. Rows are packed
    /// dense (stride == row byte width); rank-1 buffers report their full
    /// byte length as a single row.
    pub row_stride: u32,
}

/// The canonical hints for a tensor/buffer set: every buffer starts at a
/// [`BUFFER_ALIGN`]ed address (both `AlignedBytes` allocations and v2
/// image windows guarantee this), and rows are packed dense.
pub(crate) fn canonical_layout_hints(
    tensors: &[TensorInfo],
    buffers: &[ByteView],
) -> Vec<BufferLayout> {
    let mut hints: Vec<BufferLayout> = buffers
        .iter()
        .map(|b| BufferLayout {
            align: BUFFER_ALIGN as u32,
            row_stride: b.len() as u32,
        })
        .collect();
    for t in tensors {
        let Some(b) = t.buffer() else { continue };
        let rows = t.shape().first().copied().unwrap_or(0);
        if t.shape().len() >= 2 && rows > 0 {
            hints[b].row_stride = (t.byte_size() / rows) as u32;
        }
    }
    hints
}

/// A complete, validated model.
///
/// Constant buffers are [`ByteView`]s into 64-byte-aligned storage: models
/// deserialized from an OMGM v2 blob borrow windows of one shared decrypted
/// image (see [`crate::buffer::ModelBuf`]), and cloning a model is a
/// refcount bump per buffer rather than a copy of the weights.
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    pub(crate) tensors: Vec<TensorInfo>,
    pub(crate) buffers: Vec<ByteView>,
    pub(crate) layout_hints: Vec<BufferLayout>,
    pub(crate) ops: Vec<Op>,
    pub(crate) input: TensorId,
    pub(crate) output: TensorId,
    pub(crate) labels: Vec<Arc<str>>,
    pub(crate) description: String,
}

impl Model {
    /// Starts building a model.
    pub fn builder() -> ModelBuilder {
        ModelBuilder::new()
    }

    /// Tensor metadata by id.
    ///
    /// # Errors
    ///
    /// [`NnError::UnknownTensor`] for out-of-range ids.
    pub fn tensor(&self, id: TensorId) -> Result<&TensorInfo> {
        self.tensors
            .get(id.0)
            .ok_or(NnError::UnknownTensor { id: id.0 })
    }

    /// All tensors.
    pub fn tensors(&self) -> &[TensorInfo] {
        &self.tensors
    }

    /// The ops in execution order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The model input tensor.
    pub fn input(&self) -> TensorId {
        self.input
    }

    /// The model output tensor.
    pub fn output(&self) -> TensorId {
        self.output
    }

    /// Class labels (e.g. the 12 keyword classes), interned as `Arc<str>`
    /// so serving paths can hand out a label without allocating: cloning an
    /// `Arc<str>` is a refcount bump, not a string copy.
    pub fn labels(&self) -> &[Arc<str>] {
        &self.labels
    }

    /// Free-text description.
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Per-buffer layout hints (alignment + row stride), index-parallel
    /// with the constant buffers. Validated against the actual layout, so
    /// SIMD kernels may rely on them.
    pub fn layout_hints(&self) -> &[BufferLayout] {
        &self.layout_hints
    }

    /// Raw constant buffer by index.
    pub(crate) fn buffer(&self, idx: usize) -> Result<&[u8]> {
        self.buffers
            .get(idx)
            .map(ByteView::as_slice)
            .ok_or(NnError::MalformedModel("buffer index out of range"))
    }

    /// Whether every constant buffer of `self` and `other` is a window into
    /// the *same backing allocation* — i.e. the two models share one
    /// decrypted image instead of holding independent weight copies. This
    /// is the property the fast provisioning path guarantees for an
    /// N-device fleet (memory does not scale N× with model size).
    pub fn shares_storage_with(&self, other: &Model) -> bool {
        self.buffers.len() == other.buffers.len()
            && self
                .buffers
                .iter()
                .zip(&other.buffers)
                .all(|(a, b)| a.same_backing(b))
    }

    /// Raw constant data backing a weight tensor, if it is constant.
    ///
    /// # Errors
    ///
    /// [`NnError::UnknownTensor`] for out-of-range ids.
    pub fn weight_data(&self, id: TensorId) -> Result<Option<&[u8]>> {
        match self.tensor(id)?.buffer() {
            Some(idx) => Ok(Some(self.buffer(idx)?)),
            None => Ok(None),
        }
    }

    /// Total bytes of constant data (the "model size" the paper reports as
    /// ≈49 kB for `tiny_conv`).
    pub fn weight_bytes(&self) -> usize {
        self.buffers.iter().map(|b| b.len()).sum()
    }

    /// Runs full structural validation: every tensor id in range, constant
    /// buffers sized to their tensors, and every op's shape/dtype/quant
    /// preconditions. Called by [`ModelBuilder::build`] and by
    /// [`crate::format::deserialize`], so a `Model` in hand is always valid
    /// and the interpreter can precompile steps without re-checking.
    pub(crate) fn validate(&self) -> Result<()> {
        let check = |id: TensorId| -> Result<&TensorInfo> {
            self.tensors
                .get(id.0)
                .ok_or(NnError::UnknownTensor { id: id.0 })
        };
        check(self.input)?;
        check(self.output)?;
        for t in &self.tensors {
            // Dequantization is `scale * (q - zp)`: a non-positive or
            // non-finite scale would silently invert or poison every
            // downstream comparison (classify takes argmax in the
            // quantized domain), so a tampered blob must be rejected here.
            if let Some(q) = t.quant() {
                if !(q.scale.is_finite() && q.scale > 0.0) {
                    return Err(NnError::MalformedModel(
                        "quantization scale must be positive and finite",
                    ));
                }
                // An i8 tensor's zero point must itself be representable
                // in i8: the kernels pack padding as the zero point and
                // hoist `-zp` offsets, both of which assume it fits. A
                // tampered blob carrying an out-of-range zp must be
                // rejected, not silently truncated.
                if t.dtype() == DType::I8 && !(-128..=127).contains(&q.zero_point) {
                    return Err(NnError::MalformedModel(
                        "i8 quantization zero point out of range",
                    ));
                }
            }
            if let Some(b) = t.buffer() {
                let buf = self.buffer(b)?;
                if buf.len() != t.byte_size() {
                    return Err(NnError::BufferSizeMismatch {
                        tensor: t.name().to_owned(),
                        expected: t.byte_size(),
                        got: buf.len(),
                    });
                }
            }
        }
        // Layout hints are *promises* SIMD kernels are allowed to build on;
        // a v2 header whose hints contradict the actual section layout is
        // hostile (or corrupt) and must be rejected, not trusted.
        if self.layout_hints.len() != self.buffers.len() {
            return Err(NnError::MalformedModel(
                "layout hint count must match buffer count",
            ));
        }
        let canonical = canonical_layout_hints(&self.tensors, &self.buffers);
        for ((hint, want), buf) in self.layout_hints.iter().zip(&canonical).zip(&self.buffers) {
            if !hint.align.is_power_of_two() || hint.align as usize > BUFFER_ALIGN {
                return Err(NnError::MalformedModel(
                    "layout hint alignment must be a power of two no larger than 64",
                ));
            }
            let data = buf.as_slice();
            if !data.is_empty() && !(data.as_ptr() as usize).is_multiple_of(hint.align as usize) {
                return Err(NnError::MalformedModel(
                    "buffer address does not satisfy its alignment hint",
                ));
            }
            if hint.row_stride != want.row_stride {
                return Err(NnError::MalformedModel(
                    "layout hint row stride contradicts the tensor layout",
                ));
            }
        }
        for op in &self.ops {
            for id in op.inputs() {
                check(id)?;
            }
            check(op.output())?;
            self.validate_op(op)?;
        }
        Ok(())
    }

    fn validate_op(&self, op: &Op) -> Result<()> {
        let t = |id: TensorId| self.tensor(id);
        let want_quant = |id: TensorId| -> Result<QuantParams> {
            t(id)?.quant().ok_or_else(|| NnError::MissingQuantization {
                tensor: t(id).map(|x| x.name().to_owned()).unwrap_or_default(),
            })
        };
        match *op {
            Op::Conv2D {
                input,
                filter,
                bias,
                output,
                stride_h,
                stride_w,
                padding,
                ..
            } => {
                let (i, f, b, o) = (t(input)?, t(filter)?, t(bias)?, t(output)?);
                if i.dtype() != DType::I8 || f.dtype() != DType::I8 || o.dtype() != DType::I8 {
                    return Err(NnError::DtypeMismatch {
                        context: "Conv2D activations/weights",
                    });
                }
                if b.dtype() != DType::I32 {
                    return Err(NnError::DtypeMismatch {
                        context: "Conv2D bias",
                    });
                }
                let (is, fs, os) = (i.shape(), f.shape(), o.shape());
                if is.len() != 4 || fs.len() != 4 || os.len() != 4 {
                    return Err(NnError::ShapeMismatch {
                        context: "Conv2D",
                        detail: "tensors must be rank 4 (NHWC / OHWI)".into(),
                    });
                }
                if fs[3] != is[3] {
                    return Err(NnError::ShapeMismatch {
                        context: "Conv2D",
                        detail: format!("filter in_c {} != input channels {}", fs[3], is[3]),
                    });
                }
                let oh = conv_output_size(is[1], fs[1], stride_h, padding);
                let ow = conv_output_size(is[2], fs[2], stride_w, padding);
                if os[1] != oh || os[2] != ow || os[3] != fs[0] || os[0] != is[0] {
                    return Err(NnError::ShapeMismatch {
                        context: "Conv2D",
                        detail: format!(
                            "expected output [{}, {}, {}, {}], got {:?}",
                            is[0], oh, ow, fs[0], os
                        ),
                    });
                }
                if b.elem_count() != fs[0] {
                    return Err(NnError::ShapeMismatch {
                        context: "Conv2D",
                        detail: format!("bias has {} elements, want {}", b.elem_count(), fs[0]),
                    });
                }
                want_quant(input)?;
                want_quant(filter)?;
                want_quant(output)?;
            }
            Op::DepthwiseConv2D {
                input,
                filter,
                bias,
                output,
                stride_h,
                stride_w,
                padding,
                depth_multiplier,
                ..
            } => {
                let (i, f, b, o) = (t(input)?, t(filter)?, t(bias)?, t(output)?);
                let (is, fs, os) = (i.shape(), f.shape(), o.shape());
                if is.len() != 4 || fs.len() != 4 || os.len() != 4 {
                    return Err(NnError::ShapeMismatch {
                        context: "DepthwiseConv2D",
                        detail: "tensors must be rank 4".into(),
                    });
                }
                let out_c = is[3] * depth_multiplier;
                if fs[3] != out_c {
                    return Err(NnError::ShapeMismatch {
                        context: "DepthwiseConv2D",
                        detail: format!("filter channels {} != in_c*mult {}", fs[3], out_c),
                    });
                }
                let oh = conv_output_size(is[1], fs[1], stride_h, padding);
                let ow = conv_output_size(is[2], fs[2], stride_w, padding);
                if os != [is[0], oh, ow, out_c] {
                    return Err(NnError::ShapeMismatch {
                        context: "DepthwiseConv2D",
                        detail: format!("expected [{}, {oh}, {ow}, {out_c}], got {os:?}", is[0]),
                    });
                }
                if b.elem_count() != out_c {
                    return Err(NnError::ShapeMismatch {
                        context: "DepthwiseConv2D",
                        detail: "bias size mismatch".into(),
                    });
                }
                want_quant(input)?;
                want_quant(filter)?;
                want_quant(output)?;
            }
            Op::FullyConnected {
                input,
                filter,
                bias,
                output,
                ..
            } => {
                let (i, f, b, o) = (t(input)?, t(filter)?, t(bias)?, t(output)?);
                if f.shape().len() != 2 {
                    return Err(NnError::ShapeMismatch {
                        context: "FullyConnected",
                        detail: "filter must be rank 2 [out, in]".into(),
                    });
                }
                let (out_f, in_f) = (f.shape()[0], f.shape()[1]);
                if i.elem_count() % in_f != 0 {
                    return Err(NnError::ShapeMismatch {
                        context: "FullyConnected",
                        detail: format!(
                            "input of {} elements not divisible by in features {in_f}",
                            i.elem_count()
                        ),
                    });
                }
                if o.elem_count() != (i.elem_count() / in_f) * out_f {
                    return Err(NnError::ShapeMismatch {
                        context: "FullyConnected",
                        detail: "output element count mismatch".into(),
                    });
                }
                if b.elem_count() != out_f {
                    return Err(NnError::ShapeMismatch {
                        context: "FullyConnected",
                        detail: "bias size mismatch".into(),
                    });
                }
                want_quant(input)?;
                want_quant(filter)?;
                want_quant(output)?;
            }
            Op::AveragePool2D {
                input,
                output,
                filter_h,
                filter_w,
                stride_h,
                stride_w,
                padding,
            }
            | Op::MaxPool2D {
                input,
                output,
                filter_h,
                filter_w,
                stride_h,
                stride_w,
                padding,
            } => {
                let (i, o) = (t(input)?, t(output)?);
                let (is, os) = (i.shape(), o.shape());
                if is.len() != 4 || os.len() != 4 {
                    return Err(NnError::ShapeMismatch {
                        context: "Pool2D",
                        detail: "tensors must be rank 4".into(),
                    });
                }
                let oh = conv_output_size(is[1], filter_h, stride_h, padding);
                let ow = conv_output_size(is[2], filter_w, stride_w, padding);
                if os != [is[0], oh, ow, is[3]] {
                    return Err(NnError::ShapeMismatch {
                        context: "Pool2D",
                        detail: format!("expected [{}, {oh}, {ow}, {}], got {os:?}", is[0], is[3]),
                    });
                }
            }
            Op::Softmax { input, output } => {
                let (i, o) = (t(input)?, t(output)?);
                if i.elem_count() != o.elem_count() {
                    return Err(NnError::ShapeMismatch {
                        context: "Softmax",
                        detail: "element counts differ".into(),
                    });
                }
                want_quant(input)?;
                want_quant(output)?;
            }
            Op::Reshape { input, output } => {
                let (i, o) = (t(input)?, t(output)?);
                if i.elem_count() != o.elem_count() {
                    return Err(NnError::ShapeMismatch {
                        context: "Reshape",
                        detail: "element counts differ".into(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Incremental builder for [`Model`].
///
/// # Examples
///
/// ```
/// use omg_nn::model::{Activation, Model, Op};
/// use omg_nn::quantize::QuantParams;
/// use omg_nn::tensor::DType;
///
/// let mut b = Model::builder();
/// let input = b.add_activation("in", vec![1, 4], DType::I8,
///     Some(QuantParams { scale: 0.5, zero_point: 0 }));
/// let w = b.add_weight_i8("w", vec![2, 4], vec![1i8; 8], QuantParams::symmetric(0.25));
/// let bias = b.add_weight_i32("b", vec![2], vec![0i32; 2]);
/// let out = b.add_activation("out", vec![1, 2], DType::I8,
///     Some(QuantParams { scale: 1.0, zero_point: 0 }));
/// b.add_op(Op::FullyConnected { input, filter: w, bias, output: out, activation: Activation::None });
/// b.set_input(input);
/// b.set_output(out);
/// let model = b.build()?;
/// assert_eq!(model.ops().len(), 1);
/// # Ok::<(), omg_nn::NnError>(())
/// ```
#[derive(Debug, Default)]
pub struct ModelBuilder {
    tensors: Vec<TensorInfo>,
    buffers: Vec<ByteView>,
    ops: Vec<Op>,
    input: Option<TensorId>,
    output: Option<TensorId>,
    labels: Vec<Arc<str>>,
    description: String,
}

impl ModelBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an activation tensor (planned into the arena at run time).
    pub fn add_activation(
        &mut self,
        name: &str,
        shape: Vec<usize>,
        dtype: DType,
        quant: Option<QuantParams>,
    ) -> TensorId {
        self.tensors
            .push(TensorInfo::new(name.to_owned(), shape, dtype, quant, None));
        TensorId(self.tensors.len() - 1)
    }

    /// Adds an int8 weight tensor with its constant data.
    pub fn add_weight_i8(
        &mut self,
        name: &str,
        shape: Vec<usize>,
        data: Vec<i8>,
        quant: QuantParams,
    ) -> TensorId {
        let mut bytes = AlignedBytes::zeroed(data.len());
        for (dst, &v) in bytes.iter_mut().zip(&data) {
            *dst = v as u8;
        }
        self.buffers.push(ByteView::owned(bytes));
        self.tensors.push(TensorInfo::new(
            name.to_owned(),
            shape,
            DType::I8,
            Some(quant),
            Some(self.buffers.len() - 1),
        ));
        TensorId(self.tensors.len() - 1)
    }

    /// Adds an int32 bias tensor with its constant data (stored
    /// little-endian in aligned storage, so the interpreter can borrow it
    /// in place).
    pub fn add_weight_i32(&mut self, name: &str, shape: Vec<usize>, data: Vec<i32>) -> TensorId {
        let mut bytes = AlignedBytes::zeroed(data.len() * 4);
        for (dst, v) in bytes.chunks_exact_mut(4).zip(&data) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
        self.buffers.push(ByteView::owned(bytes));
        self.tensors.push(TensorInfo::new(
            name.to_owned(),
            shape,
            DType::I32,
            None,
            Some(self.buffers.len() - 1),
        ));
        TensorId(self.tensors.len() - 1)
    }

    /// Appends an op (execution order is insertion order).
    pub fn add_op(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Declares the model input tensor.
    pub fn set_input(&mut self, id: TensorId) -> &mut Self {
        self.input = Some(id);
        self
    }

    /// Declares the model output tensor.
    pub fn set_output(&mut self, id: TensorId) -> &mut Self {
        self.output = Some(id);
        self
    }

    /// Sets the class labels (interned as `Arc<str>`).
    pub fn set_labels<I: IntoIterator<Item = S>, S: Into<Arc<str>>>(
        &mut self,
        labels: I,
    ) -> &mut Self {
        self.labels = labels.into_iter().map(Into::into).collect();
        self
    }

    /// Sets the free-text description.
    pub fn set_description(&mut self, description: &str) -> &mut Self {
        self.description = description.to_owned();
        self
    }

    /// Validates and produces the model.
    ///
    /// # Errors
    ///
    /// [`NnError::MalformedModel`] if input/output are missing, plus any
    /// shape/dtype/quantization validation error.
    pub fn build(self) -> Result<Model> {
        let input = self
            .input
            .ok_or(NnError::MalformedModel("input tensor not set"))?;
        let output = self
            .output
            .ok_or(NnError::MalformedModel("output tensor not set"))?;
        let layout_hints = canonical_layout_hints(&self.tensors, &self.buffers);
        let model = Model {
            tensors: self.tensors,
            buffers: self.buffers,
            layout_hints,
            ops: self.ops,
            input,
            output,
            labels: self.labels,
            description: self.description,
        };
        model.validate()?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn qp(scale: f32, zp: i32) -> QuantParams {
        QuantParams {
            scale,
            zero_point: zp,
        }
    }

    #[test]
    fn conv_output_sizes() {
        // tiny_conv: 49x43 input, 8x10 kernel (HxW = 8 high? paper says
        // 8 filters of 8×10), stride 2 => SAME gives 25x22.
        assert_eq!(conv_output_size(49, 10, 2, Padding::Same), 25);
        assert_eq!(conv_output_size(43, 8, 2, Padding::Same), 22);
        assert_eq!(conv_output_size(49, 10, 2, Padding::Valid), 20);
        assert_eq!(conv_output_size(5, 3, 1, Padding::Valid), 3);
        assert_eq!(conv_output_size(5, 3, 1, Padding::Same), 5);
    }

    #[test]
    fn same_padding_splits() {
        let (before, after) = same_padding(5, 3, 1);
        assert_eq!((before, after), (1, 1));
        let (before, after) = same_padding(49, 10, 2);
        // out=25, span=(25-1)*2+10=58, pad=9 => 4 before, 5 after.
        assert_eq!((before, after), (4, 5));
    }

    #[test]
    fn builder_requires_input_output() {
        let b = Model::builder();
        assert!(matches!(b.build(), Err(NnError::MalformedModel(_))));
    }

    #[test]
    fn validation_catches_bad_conv_shapes() {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 8, 8, 1], DType::I8, Some(qp(0.5, 0)));
        let filter = b.add_weight_i8(
            "f",
            vec![4, 3, 3, 1],
            vec![0; 36],
            QuantParams::symmetric(0.1),
        );
        let bias = b.add_weight_i32("b", vec![4], vec![0; 4]);
        // Wrong output shape (channels).
        let out = b.add_activation("out", vec![1, 8, 8, 5], DType::I8, Some(qp(0.5, 0)));
        b.add_op(Op::Conv2D {
            input,
            filter,
            bias,
            output: out,
            stride_h: 1,
            stride_w: 1,
            padding: Padding::Same,
            activation: Activation::Relu,
        });
        b.set_input(input);
        b.set_output(out);
        assert!(matches!(b.build(), Err(NnError::ShapeMismatch { .. })));
    }

    #[test]
    fn validation_catches_buffer_size_mismatch() {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 4], DType::I8, Some(qp(1.0, 0)));
        // 2x4 weights need 8 values; give 7.
        let w = b.add_weight_i8("w", vec![2, 4], vec![0; 7], QuantParams::symmetric(0.1));
        let bias = b.add_weight_i32("b", vec![2], vec![0; 2]);
        let out = b.add_activation("out", vec![1, 2], DType::I8, Some(qp(1.0, 0)));
        b.add_op(Op::FullyConnected {
            input,
            filter: w,
            bias,
            output: out,
            activation: Activation::None,
        });
        b.set_input(input);
        b.set_output(out);
        assert!(matches!(b.build(), Err(NnError::BufferSizeMismatch { .. })));
    }

    #[test]
    fn validation_requires_quantization() {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 4], DType::I8, None); // missing!
        let w = b.add_weight_i8("w", vec![2, 4], vec![0; 8], QuantParams::symmetric(0.1));
        let bias = b.add_weight_i32("b", vec![2], vec![0; 2]);
        let out = b.add_activation("out", vec![1, 2], DType::I8, Some(qp(1.0, 0)));
        b.add_op(Op::FullyConnected {
            input,
            filter: w,
            bias,
            output: out,
            activation: Activation::None,
        });
        b.set_input(input);
        b.set_output(out);
        assert!(matches!(
            b.build(),
            Err(NnError::MissingQuantization { .. })
        ));
    }

    #[test]
    fn validation_rejects_nonpositive_or_nonfinite_scales() {
        for bad_scale in [0.0f32, -0.5, f32::NAN, f32::INFINITY] {
            let mut b = Model::builder();
            let input = b.add_activation("in", vec![1, 4], DType::I8, Some(qp(bad_scale, 0)));
            let w = b.add_weight_i8("w", vec![2, 4], vec![0; 8], QuantParams::symmetric(0.1));
            let bias = b.add_weight_i32("b", vec![2], vec![0; 2]);
            let out = b.add_activation("out", vec![1, 2], DType::I8, Some(qp(1.0, 0)));
            b.add_op(Op::FullyConnected {
                input,
                filter: w,
                bias,
                output: out,
                activation: Activation::None,
            });
            b.set_input(input);
            b.set_output(out);
            assert!(
                matches!(b.build(), Err(NnError::MalformedModel(_))),
                "scale {bad_scale} must be rejected"
            );
        }
    }

    #[test]
    fn out_of_range_i8_zero_points_are_rejected() {
        // The kernels pack padding as the zero point and hoist -zp
        // offsets; a zp that does not fit i8 (e.g. from a tampered blob)
        // would silently truncate there, so validation must refuse it.
        for bad_zp in [128, -129, 1000, i32::MIN] {
            let mut b = Model::builder();
            let input = b.add_activation("in", vec![1, 4], DType::I8, Some(qp(0.1, bad_zp)));
            let w = b.add_weight_i8("w", vec![2, 4], vec![0; 8], QuantParams::symmetric(0.1));
            let bias = b.add_weight_i32("b", vec![2], vec![0; 2]);
            let out = b.add_activation("out", vec![1, 2], DType::I8, Some(qp(1.0, 0)));
            b.add_op(Op::FullyConnected {
                input,
                filter: w,
                bias,
                output: out,
                activation: Activation::None,
            });
            b.set_input(input);
            b.set_output(out);
            assert!(
                matches!(b.build(), Err(NnError::MalformedModel(_))),
                "zero point {bad_zp} must be rejected"
            );
        }
    }

    #[test]
    fn op_introspection() {
        let op = Op::Softmax {
            input: TensorId(1),
            output: TensorId(2),
        };
        assert_eq!(op.inputs(), vec![TensorId(1)]);
        assert_eq!(op.output(), TensorId(2));
        assert_eq!(op.name(), "Softmax");
    }

    #[test]
    fn weight_bytes_counts_buffers() {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 4], DType::I8, Some(qp(1.0, 0)));
        let w = b.add_weight_i8("w", vec![2, 4], vec![0; 8], QuantParams::symmetric(0.1));
        let bias = b.add_weight_i32("b", vec![2], vec![0; 2]);
        let out = b.add_activation("out", vec![1, 2], DType::I8, Some(qp(1.0, 0)));
        b.add_op(Op::FullyConnected {
            input,
            filter: w,
            bias,
            output: out,
            activation: Activation::None,
        });
        b.set_input(input);
        b.set_output(out);
        let model = b.build().unwrap();
        assert_eq!(model.weight_bytes(), 8 + 8);
    }
}
