//! The arena-based model interpreter.
//!
//! Mirrors the TFLite-Micro execution model: all activations live in one
//! fixed arena planned up front (see [`crate::planner`]); weights are read
//! directly from the model's constant buffers; `invoke` runs the ops in
//! order with no allocation on the hot path.

use crate::error::{NnError, Result};
use crate::kernels;
use crate::model::{same_padding, Activation, Model, Op, Padding};
use crate::planner::{plan_arena, ArenaPlan, TensorLife};
use crate::quantize::FixedMultiplier;
use crate::tensor::{DType, TensorId};

/// Resolved execution parameters for one op.
#[derive(Debug, Clone)]
enum Step {
    Conv2D {
        input: TensorId,
        filter: TensorId,
        bias: TensorId,
        output: TensorId,
        input_shape: [usize; 4],
        filter_shape: [usize; 4],
        output_shape: [usize; 4],
        stride: (usize, usize),
        pad: (usize, usize),
        input_offset: i32,
        output_offset: i32,
        multiplier: FixedMultiplier,
        act_min: i8,
        act_max: i8,
        depthwise: Option<usize>,
    },
    FullyConnected {
        input: TensorId,
        filter: TensorId,
        bias: TensorId,
        output: TensorId,
        in_features: usize,
        out_features: usize,
        input_offset: i32,
        output_offset: i32,
        multiplier: FixedMultiplier,
        act_min: i8,
        act_max: i8,
    },
    Pool2D {
        input: TensorId,
        output: TensorId,
        input_shape: [usize; 4],
        output_shape: [usize; 4],
        filter: (usize, usize),
        stride: (usize, usize),
        pad: (usize, usize),
        is_max: bool,
    },
    Softmax {
        input: TensorId,
        output: TensorId,
        input_scale: f32,
        input_zp: i32,
    },
    Copy {
        input: TensorId,
        output: TensorId,
    },
}

/// Executes a [`Model`] using a fixed activation arena.
///
/// # Examples
///
/// See [`crate`] level docs for an end-to-end example.
#[derive(Debug)]
pub struct Interpreter {
    model: Model,
    plan: ArenaPlan,
    arena: Vec<i8>,
    steps: Vec<Step>,
    scratch: Vec<i8>,
    /// Decoded int8 weight buffers by tensor index.
    weights_i8: Vec<Option<Vec<i8>>>,
    /// Decoded int32 bias buffers by tensor index.
    weights_i32: Vec<Option<Vec<i32>>>,
    /// Tensors to snapshot during the current `invoke_with_taps` run.
    pending_taps: Vec<TensorId>,
    /// Snapshots collected for the pending taps.
    tap_results: Vec<(TensorId, Vec<i8>)>,
}

fn shape4(shape: &[usize], context: &'static str) -> Result<[usize; 4]> {
    shape.try_into().map_err(|_| NnError::ShapeMismatch {
        context,
        detail: format!("expected rank 4, got {shape:?}"),
    })
}

impl Interpreter {
    /// Plans the arena and resolves kernel parameters for `model`.
    ///
    /// # Errors
    ///
    /// Any validation error surfaced while resolving shapes, dtypes, or
    /// quantization parameters.
    pub fn new(model: Model) -> Result<Self> {
        // Decode constant buffers.
        let mut weights_i8: Vec<Option<Vec<i8>>> = vec![None; model.tensors.len()];
        let mut weights_i32: Vec<Option<Vec<i32>>> = vec![None; model.tensors.len()];
        for (idx, t) in model.tensors.iter().enumerate() {
            let Some(buf_idx) = t.buffer() else { continue };
            let raw = model.buffer(buf_idx)?;
            match t.dtype() {
                DType::I8 => {
                    weights_i8[idx] = Some(raw.iter().map(|&b| b as i8).collect());
                }
                DType::I32 => {
                    let vals = raw
                        .chunks_exact(4)
                        .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
                        .collect();
                    weights_i32[idx] = Some(vals);
                }
                DType::F32 => {
                    return Err(NnError::DtypeMismatch {
                        context: "f32 constants unsupported",
                    })
                }
            }
        }

        // Lifetimes for activation tensors.
        let mut first: Vec<Option<usize>> = vec![None; model.tensors.len()];
        let mut last: Vec<Option<usize>> = vec![None; model.tensors.len()];
        first[model.input.index()] = Some(0);
        for (op_idx, op) in model.ops.iter().enumerate() {
            for id in op.inputs() {
                if model.tensor(id)?.is_constant() {
                    continue;
                }
                last[id.index()] = Some(op_idx);
                if first[id.index()].is_none() {
                    first[id.index()] = Some(op_idx);
                }
            }
            let out = op.output();
            if first[out.index()].is_none() {
                first[out.index()] = Some(op_idx);
            }
            last[out.index()] = Some(last[out.index()].unwrap_or(op_idx).max(op_idx));
        }
        let final_op = model.ops.len().saturating_sub(1);
        last[model.output.index()] = Some(final_op);

        let lives: Vec<TensorLife> = model
            .tensors
            .iter()
            .enumerate()
            .filter(|(idx, t)| !t.is_constant() && first[*idx].is_some())
            .map(|(idx, t)| TensorLife {
                id: idx,
                size: t.byte_size(),
                first_use: first[idx].unwrap_or(0),
                last_use: last[idx].unwrap_or(first[idx].unwrap_or(0)),
            })
            .collect();
        let plan = plan_arena(&lives);
        let arena = vec![0i8; plan.arena_size];

        // Resolve steps.
        let mut steps = Vec::with_capacity(model.ops.len());
        for op in &model.ops {
            steps.push(Self::resolve(&model, op)?);
        }

        Ok(Interpreter {
            model,
            plan,
            arena,
            steps,
            scratch: Vec::new(),
            weights_i8,
            weights_i32,
            pending_taps: Vec::new(),
            tap_results: Vec::new(),
        })
    }

    fn resolve(model: &Model, op: &Op) -> Result<Step> {
        let act_range = |activation: Activation, out_zp: i32| -> (i8, i8) {
            match activation {
                Activation::None => (-128, 127),
                Activation::Relu => (out_zp.clamp(-128, 127) as i8, 127),
            }
        };
        match *op {
            Op::Conv2D {
                input,
                filter,
                bias,
                output,
                stride_h,
                stride_w,
                padding,
                activation,
            } => {
                let (it, ft, ot) = (
                    model.tensor(input)?,
                    model.tensor(filter)?,
                    model.tensor(output)?,
                );
                let in_q = it.quant().expect("validated");
                let w_q = ft.quant().expect("validated");
                let out_q = ot.quant().expect("validated");
                let multiplier = FixedMultiplier::from_real(
                    f64::from(in_q.scale) * f64::from(w_q.scale) / f64::from(out_q.scale),
                )?;
                let input_shape = shape4(it.shape(), "Conv2D input")?;
                let filter_shape = shape4(ft.shape(), "Conv2D filter")?;
                let output_shape = shape4(ot.shape(), "Conv2D output")?;
                let pad = match padding {
                    Padding::Same => (
                        same_padding(input_shape[1], filter_shape[1], stride_h).0,
                        same_padding(input_shape[2], filter_shape[2], stride_w).0,
                    ),
                    Padding::Valid => (0, 0),
                };
                let (act_min, act_max) = act_range(activation, out_q.zero_point);
                Ok(Step::Conv2D {
                    input,
                    filter,
                    bias,
                    output,
                    input_shape,
                    filter_shape,
                    output_shape,
                    stride: (stride_h, stride_w),
                    pad,
                    input_offset: -in_q.zero_point,
                    output_offset: out_q.zero_point,
                    multiplier,
                    act_min,
                    act_max,
                    depthwise: None,
                })
            }
            Op::DepthwiseConv2D {
                input,
                filter,
                bias,
                output,
                stride_h,
                stride_w,
                padding,
                activation,
                depth_multiplier,
            } => {
                let (it, ft, ot) = (
                    model.tensor(input)?,
                    model.tensor(filter)?,
                    model.tensor(output)?,
                );
                let in_q = it.quant().expect("validated");
                let w_q = ft.quant().expect("validated");
                let out_q = ot.quant().expect("validated");
                let multiplier = FixedMultiplier::from_real(
                    f64::from(in_q.scale) * f64::from(w_q.scale) / f64::from(out_q.scale),
                )?;
                let input_shape = shape4(it.shape(), "DepthwiseConv2D input")?;
                let filter_shape = shape4(ft.shape(), "DepthwiseConv2D filter")?;
                let output_shape = shape4(ot.shape(), "DepthwiseConv2D output")?;
                let pad = match padding {
                    Padding::Same => (
                        same_padding(input_shape[1], filter_shape[1], stride_h).0,
                        same_padding(input_shape[2], filter_shape[2], stride_w).0,
                    ),
                    Padding::Valid => (0, 0),
                };
                let (act_min, act_max) = act_range(activation, out_q.zero_point);
                Ok(Step::Conv2D {
                    input,
                    filter,
                    bias,
                    output,
                    input_shape,
                    filter_shape,
                    output_shape,
                    stride: (stride_h, stride_w),
                    pad,
                    input_offset: -in_q.zero_point,
                    output_offset: out_q.zero_point,
                    multiplier,
                    act_min,
                    act_max,
                    depthwise: Some(depth_multiplier),
                })
            }
            Op::FullyConnected {
                input,
                filter,
                bias,
                output,
                activation,
            } => {
                let (it, ft, ot) = (
                    model.tensor(input)?,
                    model.tensor(filter)?,
                    model.tensor(output)?,
                );
                let in_q = it.quant().expect("validated");
                let w_q = ft.quant().expect("validated");
                let out_q = ot.quant().expect("validated");
                let multiplier = FixedMultiplier::from_real(
                    f64::from(in_q.scale) * f64::from(w_q.scale) / f64::from(out_q.scale),
                )?;
                let (act_min, act_max) = act_range(activation, out_q.zero_point);
                Ok(Step::FullyConnected {
                    input,
                    filter,
                    bias,
                    output,
                    in_features: ft.shape()[1],
                    out_features: ft.shape()[0],
                    input_offset: -in_q.zero_point,
                    output_offset: out_q.zero_point,
                    multiplier,
                    act_min,
                    act_max,
                })
            }
            Op::AveragePool2D {
                input,
                output,
                filter_h,
                filter_w,
                stride_h,
                stride_w,
                padding,
            }
            | Op::MaxPool2D {
                input,
                output,
                filter_h,
                filter_w,
                stride_h,
                stride_w,
                padding,
            } => {
                let (it, ot) = (model.tensor(input)?, model.tensor(output)?);
                let input_shape = shape4(it.shape(), "Pool2D input")?;
                let output_shape = shape4(ot.shape(), "Pool2D output")?;
                let pad = match padding {
                    Padding::Same => (
                        same_padding(input_shape[1], filter_h, stride_h).0,
                        same_padding(input_shape[2], filter_w, stride_w).0,
                    ),
                    Padding::Valid => (0, 0),
                };
                Ok(Step::Pool2D {
                    input,
                    output,
                    input_shape,
                    output_shape,
                    filter: (filter_h, filter_w),
                    stride: (stride_h, stride_w),
                    pad,
                    is_max: matches!(op, Op::MaxPool2D { .. }),
                })
            }
            Op::Softmax { input, output } => {
                let it = model.tensor(input)?;
                let q = it.quant().expect("validated");
                Ok(Step::Softmax {
                    input,
                    output,
                    input_scale: q.scale,
                    input_zp: q.zero_point,
                })
            }
            Op::Reshape { input, output } => Ok(Step::Copy { input, output }),
        }
    }

    /// The wrapped model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Bytes of activation arena in use (the "tensor arena" a TFLM port
    /// must reserve inside the enclave).
    pub fn arena_size(&self) -> usize {
        self.plan.arena_size
    }

    fn activation_range(&self, id: TensorId) -> Result<(usize, usize)> {
        let t = self.model.tensor(id)?;
        let offset = self
            .plan
            .offset_of(id.index())
            .ok_or(NnError::UnknownTensor { id: id.index() })?;
        Ok((offset, t.byte_size()))
    }

    /// Loads the slice feeding `id` into `scratch` (from the arena or from
    /// a constant buffer) and returns it.
    fn load_input(&mut self, id: TensorId) -> Result<()> {
        if let Some(w) = &self.weights_i8[id.index()] {
            self.scratch.clear();
            self.scratch.extend_from_slice(w);
            return Ok(());
        }
        let (off, len) = self.activation_range(id)?;
        self.scratch.clear();
        self.scratch.extend_from_slice(&self.arena[off..off + len]);
        Ok(())
    }

    fn filter_slice(&self, id: TensorId) -> Result<&[i8]> {
        self.weights_i8[id.index()]
            .as_deref()
            .ok_or(NnError::DtypeMismatch {
                context: "filter must be constant i8",
            })
    }

    fn bias_slice(&self, id: TensorId) -> Result<&[i32]> {
        self.weights_i32[id.index()]
            .as_deref()
            .ok_or(NnError::DtypeMismatch {
                context: "bias must be constant i32",
            })
    }

    /// Runs the model and snapshots the named activation tensors right
    /// after their producing op executes — before the arena planner can
    /// reuse their memory. Returns the snapshots in `taps` order.
    ///
    /// This is the embedding-extraction hook: e.g. tapping the post-ReLU
    /// convolution output of `tiny_conv` yields a 4400-dimensional utterance
    /// embedding usable for speaker verification.
    ///
    /// # Errors
    ///
    /// [`NnError::BadInputLength`] on input length mismatch;
    /// [`NnError::UnknownTensor`] if a tap names a constant or unused
    /// tensor.
    pub fn invoke_with_taps(&mut self, input: &[i8], taps: &[TensorId]) -> Result<Vec<Vec<i8>>> {
        // Validate taps up front so failures happen before compute.
        for &tap in taps {
            self.activation_range(tap)?;
        }
        self.pending_taps = taps.to_vec();
        self.tap_results.clear();
        let result = self.invoke(input);
        self.pending_taps.clear();
        result?;
        let mut out = Vec::with_capacity(taps.len());
        for &tap in taps {
            let snapshot = self
                .tap_results
                .iter()
                .find(|(id, _)| *id == tap)
                .map(|(_, data)| data.clone());
            match snapshot {
                Some(data) => out.push(data),
                None => {
                    // The tensor was never produced (e.g. the model input):
                    // read it from the arena directly.
                    let (off, len) = self.activation_range(tap)?;
                    out.push(self.arena[off..off + len].to_vec());
                }
            }
        }
        Ok(out)
    }

    fn record_tap(&mut self, produced: TensorId) {
        if self.pending_taps.contains(&produced) {
            if let Ok((off, len)) = self.activation_range(produced) {
                self.tap_results
                    .push((produced, self.arena[off..off + len].to_vec()));
            }
        }
    }

    /// Runs the model on quantized input (length must equal the input
    /// tensor's element count).
    ///
    /// # Errors
    ///
    /// [`NnError::BadInputLength`] on length mismatch.
    pub fn invoke(&mut self, input: &[i8]) -> Result<()> {
        let (in_off, in_len) = self.activation_range(self.model.input)?;
        if input.len() != in_len {
            return Err(NnError::BadInputLength {
                expected: in_len,
                got: input.len(),
            });
        }
        self.arena[in_off..in_off + in_len].copy_from_slice(input);
        // The input's arena slot may be reused by later ops; snapshot it now
        // if it is tapped.
        let model_input = self.model.input;
        self.record_tap(model_input);

        for step_idx in 0..self.steps.len() {
            let step = self.steps[step_idx].clone();
            match step {
                Step::Conv2D {
                    input,
                    filter,
                    bias,
                    output,
                    input_shape,
                    filter_shape,
                    output_shape,
                    stride,
                    pad,
                    input_offset,
                    output_offset,
                    multiplier,
                    act_min,
                    act_max,
                    depthwise,
                } => {
                    self.load_input(input)?;
                    let (out_off, out_len) = self.activation_range(output)?;
                    // Split borrows: scratch (input) vs arena (output) are
                    // distinct fields, but filter/bias also borrow self, so
                    // clone the small weight refs up front via raw indices.
                    let filter_data = self.filter_slice(filter)?.to_vec();
                    let bias_data = self.bias_slice(bias)?.to_vec();
                    let out_slice = &mut self.arena[out_off..out_off + out_len];
                    match depthwise {
                        None => kernels::conv2d(kernels::Conv2DArgs {
                            input: &self.scratch,
                            input_shape,
                            filter: &filter_data,
                            filter_shape,
                            bias: &bias_data,
                            output: out_slice,
                            output_shape,
                            stride,
                            pad,
                            input_offset,
                            output_offset,
                            multiplier,
                            act_min,
                            act_max,
                        }),
                        Some(mult) => kernels::depthwise_conv2d(kernels::DepthwiseConv2DArgs {
                            input: &self.scratch,
                            input_shape,
                            filter: &filter_data,
                            filter_shape,
                            bias: &bias_data,
                            output: out_slice,
                            output_shape,
                            depth_multiplier: mult,
                            stride,
                            pad,
                            input_offset,
                            output_offset,
                            multiplier,
                            act_min,
                            act_max,
                        }),
                    }
                }
                Step::FullyConnected {
                    input,
                    filter,
                    bias,
                    output,
                    in_features,
                    out_features,
                    input_offset,
                    output_offset,
                    multiplier,
                    act_min,
                    act_max,
                } => {
                    self.load_input(input)?;
                    let (out_off, out_len) = self.activation_range(output)?;
                    let filter_data = self.filter_slice(filter)?.to_vec();
                    let bias_data = self.bias_slice(bias)?.to_vec();
                    let out_slice = &mut self.arena[out_off..out_off + out_len];
                    kernels::fully_connected(kernels::FullyConnectedArgs {
                        input: &self.scratch,
                        filter: &filter_data,
                        bias: &bias_data,
                        output: out_slice,
                        in_features,
                        out_features,
                        input_offset,
                        output_offset,
                        multiplier,
                        act_min,
                        act_max,
                    });
                }
                Step::Pool2D {
                    input,
                    output,
                    input_shape,
                    output_shape,
                    filter,
                    stride,
                    pad,
                    is_max,
                } => {
                    self.load_input(input)?;
                    let (out_off, out_len) = self.activation_range(output)?;
                    let out_slice = &mut self.arena[out_off..out_off + out_len];
                    let args = kernels::Pool2DArgs {
                        input: &self.scratch,
                        input_shape,
                        output: out_slice,
                        output_shape,
                        filter,
                        stride,
                        pad,
                    };
                    if is_max {
                        kernels::max_pool2d(args);
                    } else {
                        kernels::average_pool2d(args);
                    }
                }
                Step::Softmax {
                    input,
                    output,
                    input_scale,
                    input_zp,
                } => {
                    self.load_input(input)?;
                    let (out_off, out_len) = self.activation_range(output)?;
                    let out_slice = &mut self.arena[out_off..out_off + out_len];
                    kernels::softmax(&self.scratch, input_scale, input_zp, out_slice);
                }
                Step::Copy { input, output } => {
                    self.load_input(input)?;
                    let (out_off, out_len) = self.activation_range(output)?;
                    self.arena[out_off..out_off + out_len].copy_from_slice(&self.scratch);
                }
            }
            // Snapshot tapped activations before the arena reuses them.
            let produced = self.model.ops[step_idx].output();
            self.record_tap(produced);
        }
        Ok(())
    }

    /// The raw quantized output of the last `invoke`.
    ///
    /// # Errors
    ///
    /// [`NnError::UnknownTensor`] if the output tensor was never planned.
    pub fn output_quantized(&self) -> Result<&[i8]> {
        let (off, len) = self.activation_range(self.model.output)?;
        Ok(&self.arena[off..off + len])
    }

    /// The dequantized output of the last `invoke`.
    ///
    /// # Errors
    ///
    /// [`NnError::MissingQuantization`] if the output has no parameters.
    pub fn output_dequantized(&self) -> Result<Vec<f32>> {
        let q = self
            .model
            .tensor(self.model.output)?
            .quant()
            .ok_or_else(|| NnError::MissingQuantization {
                tensor: "output".into(),
            })?;
        Ok(q.dequantize_slice(self.output_quantized()?))
    }

    /// Convenience: runs the model and returns `(argmax index, score)`.
    ///
    /// # Errors
    ///
    /// Propagates `invoke` errors.
    pub fn classify(&mut self, input: &[i8]) -> Result<(usize, f32)> {
        self.invoke(input)?;
        let probs = self.output_dequantized()?;
        let (idx, score) = probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("probabilities are finite"))
            .map(|(i, &p)| (i, p))
            .unwrap_or((0, 0.0));
        Ok((idx, score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Activation, Model, Op, Padding};
    use crate::quantize::QuantParams;
    use crate::tensor::DType;

    fn qp(scale: f32, zp: i32) -> QuantParams {
        QuantParams {
            scale,
            zero_point: zp,
        }
    }

    /// Builds a 2-layer model: conv (identity 1x1) -> fc.
    fn tiny_model() -> Model {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 2, 2, 1], DType::I8, Some(qp(1.0, 0)));
        let cf = b.add_weight_i8(
            "conv/w",
            vec![1, 1, 1, 1],
            vec![1],
            QuantParams::symmetric(1.0),
        );
        let cb = b.add_weight_i32("conv/b", vec![1], vec![0]);
        let conv_out = b.add_activation("conv", vec![1, 2, 2, 1], DType::I8, Some(qp(1.0, 0)));
        b.add_op(Op::Conv2D {
            input,
            filter: cf,
            bias: cb,
            output: conv_out,
            stride_h: 1,
            stride_w: 1,
            padding: Padding::Valid,
            activation: Activation::None,
        });
        let fw = b.add_weight_i8(
            "fc/w",
            vec![2, 4],
            vec![1, 1, 1, 1, 1, -1, 1, -1],
            QuantParams::symmetric(1.0),
        );
        let fb = b.add_weight_i32("fc/b", vec![2], vec![0, 0]);
        let fc_out = b.add_activation("fc", vec![1, 2], DType::I8, Some(qp(1.0, 0)));
        b.add_op(Op::FullyConnected {
            input: conv_out,
            filter: fw,
            bias: fb,
            output: fc_out,
            activation: Activation::None,
        });
        b.set_input(input);
        b.set_output(fc_out);
        b.set_labels(["sum", "diff"]);
        b.build().unwrap()
    }

    #[test]
    fn end_to_end_two_layer() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        interp.invoke(&[1, 2, 3, 4]).unwrap();
        // fc row0 = sum = 10; row1 = 1-2+3-4 = -2.
        assert_eq!(interp.output_quantized().unwrap(), &[10, -2]);
        let deq = interp.output_dequantized().unwrap();
        assert_eq!(deq, vec![10.0, -2.0]);
    }

    #[test]
    fn classify_returns_argmax() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        let (idx, score) = interp.classify(&[1, 2, 3, 4]).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(score, 10.0);
    }

    #[test]
    fn bad_input_length_rejected() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        assert!(matches!(
            interp.invoke(&[1, 2, 3]),
            Err(NnError::BadInputLength {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn invoke_is_deterministic_and_reusable() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        interp.invoke(&[5, 5, 5, 5]).unwrap();
        let first = interp.output_quantized().unwrap().to_vec();
        interp.invoke(&[1, 1, 1, 1]).unwrap();
        interp.invoke(&[5, 5, 5, 5]).unwrap();
        assert_eq!(interp.output_quantized().unwrap(), &first[..]);
    }

    #[test]
    fn arena_smaller_than_total_activations() {
        // in (4) + conv (4) + fc (2) = 10 total, but in/fc don't coexist
        // with everything simultaneously.
        let interp = Interpreter::new(tiny_model()).unwrap();
        assert!(interp.arena_size() <= 10);
        assert!(interp.arena_size() >= 8); // conv co-lives with in and fc
    }

    #[test]
    fn softmax_pipeline() {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 4], DType::I8, Some(qp(0.1, 0)));
        let out = b.add_activation("probs", vec![1, 4], DType::I8, Some(qp(1.0 / 256.0, -128)));
        b.add_op(Op::Softmax { input, output: out });
        b.set_input(input);
        b.set_output(out);
        let mut interp = Interpreter::new(b.build().unwrap()).unwrap();
        interp.invoke(&[0, 10, 20, 30]).unwrap();
        let probs = interp.output_dequantized().unwrap();
        let total: f32 = probs.iter().sum();
        assert!((total - 1.0).abs() < 0.05);
        assert!(probs[3] > probs[2]);
    }

    #[test]
    fn reshape_copies() {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 2, 2, 1], DType::I8, Some(qp(1.0, 0)));
        let out = b.add_activation("flat", vec![1, 4], DType::I8, Some(qp(1.0, 0)));
        b.add_op(Op::Reshape { input, output: out });
        b.set_input(input);
        b.set_output(out);
        let mut interp = Interpreter::new(b.build().unwrap()).unwrap();
        interp.invoke(&[9, 8, 7, 6]).unwrap();
        assert_eq!(interp.output_quantized().unwrap(), &[9, 8, 7, 6]);
    }

    #[test]
    fn taps_snapshot_intermediate_activations() {
        let model = tiny_model();
        // Tap the conv output (tensor id 3 in tiny_model construction order:
        // in=0, conv/w=1, conv/b=2, conv=3).
        let conv_out = TensorId(3);
        let mut interp = Interpreter::new(model).unwrap();
        let taps = interp.invoke_with_taps(&[1, 2, 3, 4], &[conv_out]).unwrap();
        assert_eq!(taps.len(), 1);
        // Identity conv: the tap equals the input.
        assert_eq!(taps[0], vec![1, 2, 3, 4]);
        // Final output unaffected.
        assert_eq!(interp.output_quantized().unwrap(), &[10, -2]);
    }

    #[test]
    fn taps_reject_constant_tensors() {
        let model = tiny_model();
        let weight_tensor = TensorId(1);
        let mut interp = Interpreter::new(model).unwrap();
        assert!(interp
            .invoke_with_taps(&[1, 2, 3, 4], &[weight_tensor])
            .is_err());
    }

    #[test]
    fn tapping_the_input_returns_it() {
        let model = tiny_model();
        let input_tensor = TensorId(0);
        let mut interp = Interpreter::new(model).unwrap();
        let taps = interp
            .invoke_with_taps(&[5, 6, 7, 8], &[input_tensor])
            .unwrap();
        assert_eq!(taps[0], vec![5, 6, 7, 8]);
    }

    #[test]
    fn max_pool_pipeline() {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 2, 2, 1], DType::I8, Some(qp(1.0, 0)));
        let out = b.add_activation("pooled", vec![1, 1, 1, 1], DType::I8, Some(qp(1.0, 0)));
        b.add_op(Op::MaxPool2D {
            input,
            output: out,
            filter_h: 2,
            filter_w: 2,
            stride_h: 2,
            stride_w: 2,
            padding: Padding::Valid,
        });
        b.set_input(input);
        b.set_output(out);
        let mut interp = Interpreter::new(b.build().unwrap()).unwrap();
        interp.invoke(&[3, 1, 4, 1]).unwrap();
        assert_eq!(interp.output_quantized().unwrap(), &[4]);
    }
}
