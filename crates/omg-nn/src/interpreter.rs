//! The arena-based model interpreter.
//!
//! Mirrors the TFLite-Micro execution model: all activations live in one
//! fixed arena planned up front (see [`crate::planner`]), weights are read
//! directly from the model's constant buffers, and `invoke` runs the ops in
//! order with **zero heap allocation on the hot path**. All shape, dtype,
//! quantization, and arena-range resolution happens once in
//! [`Interpreter::new`], which compiles the graph into an immutable step
//! list; executing a step only does split borrows into the arena and the
//! model's buffers.

use crate::arch;
use crate::buffer::ByteView;
use crate::error::{NnError, Result};
use crate::model::{same_padding, Activation, Model, Op, Padding};
use crate::planner::{plan_arena, ArenaPlan, TensorLife};
use crate::quantize::FixedMultiplier;
use crate::tensor::{DType, TensorId};
use crate::{gemm, kernels, kernels_fast};

/// Global-registry counter of interpreters built, cached so the registry
/// mutex is taken once per process, not once per construction.
fn built_counter() -> &'static omg_obs::Counter {
    static BUILT: std::sync::OnceLock<omg_obs::Counter> = std::sync::OnceLock::new();
    BUILT.get_or_init(|| {
        omg_obs::global().counter(
            "omg_nn_interpreters_built_total",
            "Interpreters compiled (model validated, arena planned)",
        )
    })
}

/// Which kernel dispatch tier an [`Interpreter`] executes with.
///
/// Three tiers, selectable per interpreter ([`Interpreter::with_kernels`])
/// or process-wide via `OMG_KERNELS=simd|portable|reference`:
///
/// * [`Simd`](KernelSet::Simd) (default) — the fast kernels
///   ([`crate::kernels_fast`]: im2col + blocked GEMM, restructured window
///   loops) with their dot products routed through the best
///   [`crate::arch::KernelVTable`] the CPU supports (AVX2 on x86_64, NEON
///   on aarch64), detected once at [`Interpreter::new`] and cached in a
///   `OnceLock`. On CPUs without a SIMD tier this degrades to exactly the
///   portable tier.
/// * [`Portable`](KernelSet::Portable) — the same fast kernels pinned to
///   the autovectorized portable lane loops. This is what the SIMD tier
///   falls back to, kept independently selectable so the fallback stays
///   covered on SIMD-capable hardware.
/// * [`Reference`](KernelSet::Reference) — scalar TFLM reference kernels
///   ([`crate::kernels`]), kept verbatim as the correctness oracle.
///
/// Differential tests assert all tiers produce bit-identical outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelSet {
    /// Fast kernels on the best runtime-detected SIMD vtable (the
    /// default; falls back to portable lanes when no SIMD tier exists).
    #[default]
    Simd,
    /// Fast kernels pinned to the portable autovectorized lane loops.
    Portable,
    /// Scalar TFLM reference kernels (the differential-test oracle).
    Reference,
}

impl KernelSet {
    /// Parses an `OMG_KERNELS` value; anything unrecognized (or absent)
    /// selects the default SIMD tier. `"fast"` is accepted as a legacy
    /// alias for it.
    pub fn parse(value: Option<&str>) -> Self {
        match value {
            Some("reference") | Some("ref") => KernelSet::Reference,
            Some("portable") => KernelSet::Portable,
            _ => KernelSet::Simd,
        }
    }

    fn from_env() -> Self {
        Self::parse(std::env::var("OMG_KERNELS").ok().as_deref())
    }

    /// The dot-product vtable this tier executes with. [`Reference`]
    /// reports the portable vtable, but the reference kernels never
    /// consult it.
    ///
    /// [`Reference`]: KernelSet::Reference
    pub fn vtable(self) -> &'static arch::KernelVTable {
        match self {
            KernelSet::Simd => arch::detect(),
            KernelSet::Portable | KernelSet::Reference => &arch::PORTABLE,
        }
    }

    /// Whether this tier runs the restructured fast kernels (as opposed
    /// to the scalar reference oracle).
    fn is_fast(self) -> bool {
        self != KernelSet::Reference
    }
}

/// Reinterprets raw constant-buffer bytes as int8 weights without copying.
fn as_i8(bytes: &[u8]) -> &[i8] {
    // SAFETY: i8 and u8 have identical size and alignment, and every bit
    // pattern is a valid i8.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<i8>(), bytes.len()) }
}

/// Reinterprets raw little-endian constant-buffer bytes as int32 biases
/// without copying. Callers must have verified 4-byte pointer alignment and
/// a length divisible by 4 (see [`bias_borrowable`]).
fn as_i32(bytes: &[u8]) -> &[i32] {
    debug_assert!(bias_borrowable(bytes));
    // SAFETY: alignment and length were checked when the step was compiled;
    // the backing storage is immutable and its address is stable (Arc'd
    // aligned allocation). Every bit pattern is a valid i32, and the bytes
    // are little-endian, matching the host (borrowing is gated on LE).
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<i32>(), bytes.len() / 4) }
}

/// Whether an i32 constant buffer can be borrowed in place: the host is
/// little-endian (the wire format is LE) and the bytes sit at their natural
/// alignment. OMGM v2 images and builder-constructed models guarantee the
/// alignment by construction; anything else falls back to the decoded pool.
fn bias_borrowable(bytes: &[u8]) -> bool {
    cfg!(target_endian = "little")
        && (bytes.as_ptr() as usize).is_multiple_of(std::mem::align_of::<i32>())
        && bytes.len().is_multiple_of(4)
}

/// Where a step's int32 bias comes from: borrowed in place from an aligned
/// model buffer (the v2 fast path), or a range in the decoded pool (the
/// fallback for unaligned/big-endian loads).
#[derive(Debug, Clone, Copy)]
enum BiasSrc {
    /// Index into the model's buffer list; reinterpreted via [`as_i32`].
    Borrowed(usize),
    /// Range in the interpreter's decoded bias pool.
    Pool(usize, usize),
}

/// Where a step reads its data input from.
#[derive(Debug, Clone, Copy)]
enum Src {
    /// An activation at a fixed arena range.
    Arena { off: usize, len: usize },
    /// A constant tensor: index into the model's buffer list.
    Constant { buffer: usize },
}

/// Kernel parameters resolved at compile time. Weight tensors are reduced
/// to buffer indices and biases to [`BiasSrc`]es — both borrowed at
/// execution time.
#[derive(Debug, Clone)]
enum StepKind {
    Conv2D {
        filter_buf: usize,
        bias: BiasSrc,
        input_shape: [usize; 4],
        filter_shape: [usize; 4],
        output_shape: [usize; 4],
        stride: (usize, usize),
        pad: (usize, usize),
        input_offset: i32,
        output_offset: i32,
        multiplier: FixedMultiplier,
        act_min: i8,
        act_max: i8,
        depthwise: Option<usize>,
        /// Per-output-channel filter row sums for the fast GEMM's hoisted
        /// zero-point offsets; precomputed here because the filter is
        /// constant. Empty for depthwise and reference-kernel steps.
        row_sums: Vec<i32>,
    },
    FullyConnected {
        filter_buf: usize,
        bias: BiasSrc,
        in_features: usize,
        out_features: usize,
        input_offset: i32,
        output_offset: i32,
        multiplier: FixedMultiplier,
        act_min: i8,
        act_max: i8,
    },
    Pool2D {
        input_shape: [usize; 4],
        output_shape: [usize; 4],
        filter: (usize, usize),
        stride: (usize, usize),
        pad: (usize, usize),
        is_max: bool,
    },
    Softmax {
        input_scale: f32,
        input_zp: i32,
    },
    Copy,
}

impl StepKind {
    /// Stable kernel name for profiles and traces.
    fn kernel_name(&self) -> &'static str {
        match self {
            StepKind::Conv2D {
                depthwise: Some(_), ..
            } => "depthwise_conv2d",
            StepKind::Conv2D { .. } => "conv2d",
            StepKind::FullyConnected { .. } => "fully_connected",
            StepKind::Pool2D { is_max: true, .. } => "max_pool2d",
            StepKind::Pool2D { .. } => "avg_pool2d",
            StepKind::Softmax { .. } => "softmax",
            StepKind::Copy => "reshape",
        }
    }
}

/// Arena range holding a fast conv2d's im2col panel.
#[derive(Debug, Clone, Copy)]
struct ScratchRange {
    off: usize,
    len: usize,
}

/// One fully resolved execution step: data source, arena output range, and
/// kernel parameters. Immutable after compilation.
#[derive(Debug, Clone)]
struct CompiledStep {
    /// The tensor this step produces (for activation taps).
    output: TensorId,
    input: Src,
    out_off: usize,
    out_len: usize,
    /// Scratch planned for this step (fast non-depthwise convs only).
    scratch: Option<ScratchRange>,
    kind: StepKind,
}

/// Executes a [`Model`] using a fixed activation arena.
///
/// # Examples
///
/// See [`crate`] level docs for an end-to-end example.
#[derive(Debug)]
pub struct Interpreter {
    model: Model,
    plan: ArenaPlan,
    arena: Vec<i8>,
    steps: Vec<CompiledStep>,
    /// Fallback pool for int32 biases that cannot be borrowed in place
    /// (unaligned bytes, or a big-endian host). Models loaded from aligned
    /// storage — every OMGM v2 image and every builder-constructed model —
    /// leave this empty: their biases are borrowed straight from the model
    /// buffers, so constructing an interpreter copies no tensor data at
    /// all.
    bias_pool: Vec<i32>,
    /// Tensors to snapshot during the current `invoke_with_taps` run.
    pending_taps: Vec<TensorId>,
    /// Snapshots collected for the pending taps.
    tap_results: Vec<(TensorId, Vec<i8>)>,
    /// Which kernel dispatch tier `invoke` executes with.
    kernels: KernelSet,
    /// The tier's dot-product vtable, resolved once at construction
    /// (CPU-feature detection happens here, never on the hot path).
    vtable: &'static arch::KernelVTable,
    /// Optional per-op timing (see [`crate::profiler`]). `None` — the
    /// default — costs one branch per step on the invoke path.
    profiler: Option<crate::profiler::Profiler>,
}

fn shape4(shape: &[usize], context: &'static str) -> Result<[usize; 4]> {
    shape.try_into().map_err(|_| NnError::ShapeMismatch {
        context,
        detail: format!("expected rank 4, got {shape:?}"),
    })
}

/// Splits the arena into three disjoint sub-slices at the given
/// `(offset, length)` ranges; zero-length ranges yield empty slices.
/// Compilation guarantees the ranges are pairwise disjoint (live tensors
/// and scratch never share arena memory), which the successive
/// `split_at_mut`s then enforce structurally.
fn split3<'a>(arena: &'a mut [i8], ranges: [(usize, usize); 3]) -> [&'a mut [i8]; 3] {
    let mut order = [0usize, 1, 2];
    order.sort_unstable_by_key(|&slot| ranges[slot].0);
    let mut out: [&'a mut [i8]; 3] = [&mut [], &mut [], &mut []];
    let mut rest = arena;
    let mut consumed = 0usize;
    for slot in order {
        let (off, len) = ranges[slot];
        if len == 0 {
            continue;
        }
        let tail = std::mem::take(&mut rest);
        let (_, tail) = tail.split_at_mut(off - consumed);
        let (seg, tail) = tail.split_at_mut(len);
        out[slot] = seg;
        rest = tail;
        consumed = off + len;
    }
    out
}

/// Resolved shapes, stride, and padding of a (full or depthwise) conv op.
/// The **single** geometry resolution shared by scratch planning and step
/// compilation, so the planned im2col panel and the executed step cannot
/// drift apart.
struct ConvGeometry {
    input_shape: [usize; 4],
    filter_shape: [usize; 4],
    output_shape: [usize; 4],
    stride: (usize, usize),
    pad: (usize, usize),
}

impl ConvGeometry {
    /// im2col panel bytes the fast conv needs (zero when the input is
    /// read in place).
    fn im2col_len(&self) -> usize {
        gemm::conv_im2col_len(self.filter_shape, self.output_shape, self.stride, self.pad)
    }
}

fn conv_geometry(
    model: &Model,
    input: TensorId,
    filter: TensorId,
    output: TensorId,
    stride: (usize, usize),
    padding: Padding,
    context: &'static str,
) -> Result<ConvGeometry> {
    let input_shape = shape4(model.tensor(input)?.shape(), context)?;
    let filter_shape = shape4(model.tensor(filter)?.shape(), context)?;
    let output_shape = shape4(model.tensor(output)?.shape(), context)?;
    let pad = match padding {
        Padding::Same => (
            same_padding(input_shape[1], filter_shape[1], stride.0).0,
            same_padding(input_shape[2], filter_shape[2], stride.1).0,
        ),
        Padding::Valid => (0, 0),
    };
    Ok(ConvGeometry {
        input_shape,
        filter_shape,
        output_shape,
        stride,
        pad,
    })
}

/// Arena scratch a fast (non-depthwise) conv step needs: the im2col
/// panel length in bytes, from the same [`conv_geometry`] resolution
/// `compile` uses. Zero (no scratch) for convs that read the input in
/// place and for every other op.
fn conv_scratch_layout(model: &Model, op: &Op) -> Result<usize> {
    let Op::Conv2D {
        input,
        filter,
        output,
        stride_h,
        stride_w,
        padding,
        ..
    } = *op
    else {
        return Ok(0);
    };
    let geo = conv_geometry(
        model,
        input,
        filter,
        output,
        (stride_h, stride_w),
        padding,
        "Conv2D",
    )?;
    Ok(geo.im2col_len())
}

impl Interpreter {
    /// Plans the arena, decodes biases, and compiles every op into a fully
    /// resolved step. Executes with the SIMD-dispatched kernel set (CPU
    /// features detected once, here) unless the `OMG_KERNELS` environment
    /// toggle (`reference`, `portable`, `simd`) selects another tier (see
    /// [`KernelSet`] and [`Self::with_kernels`]).
    ///
    /// # Errors
    ///
    /// Any validation error surfaced while resolving shapes, dtypes,
    /// quantization parameters, or arena placement.
    pub fn new(model: Model) -> Result<Self> {
        Self::with_kernels(model, KernelSet::from_env())
    }

    /// [`Self::new`] with an explicit kernel implementation set — the
    /// seam the differential tests and benches use to pit the fast
    /// kernels against the scalar reference oracle on identical models.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::new`].
    pub fn with_kernels(model: Model, kernels: KernelSet) -> Result<Self> {
        // Resolve int32 bias buffers: aligned little-endian bytes (every v2
        // image and builder model) are borrowed in place; anything else is
        // decoded into the fallback pool. f32 constants are rejected
        // (unsupported by the int8 kernels).
        let mut bias_pool = Vec::new();
        let mut bias_srcs: Vec<Option<BiasSrc>> = vec![None; model.tensors.len()];
        for (idx, t) in model.tensors.iter().enumerate() {
            let Some(buf_idx) = t.buffer() else { continue };
            match t.dtype() {
                DType::I8 => {}
                DType::I32 => {
                    let raw = model.buffer(buf_idx)?;
                    if bias_borrowable(raw) {
                        bias_srcs[idx] = Some(BiasSrc::Borrowed(buf_idx));
                    } else {
                        let start = bias_pool.len();
                        bias_pool.extend(
                            raw.chunks_exact(4)
                                .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]])),
                        );
                        bias_srcs[idx] = Some(BiasSrc::Pool(start, bias_pool.len()));
                    }
                }
                DType::F32 => {
                    return Err(NnError::DtypeMismatch {
                        context: "f32 constants unsupported",
                    })
                }
            }
        }

        // Lifetimes for activation tensors.
        let mut first: Vec<Option<usize>> = vec![None; model.tensors.len()];
        let mut last: Vec<Option<usize>> = vec![None; model.tensors.len()];
        first[model.input.index()] = Some(0);
        for (op_idx, op) in model.ops.iter().enumerate() {
            for id in op.inputs() {
                if model.tensor(id)?.is_constant() {
                    continue;
                }
                last[id.index()] = Some(op_idx);
                if first[id.index()].is_none() {
                    first[id.index()] = Some(op_idx);
                }
            }
            let out = op.output();
            if first[out.index()].is_none() {
                first[out.index()] = Some(op_idx);
            }
            last[out.index()] = Some(last[out.index()].unwrap_or(op_idx).max(op_idx));
        }
        let final_op = model.ops.len().saturating_sub(1);
        last[model.output.index()] = Some(final_op);

        let mut lives: Vec<TensorLife> = model
            .tensors
            .iter()
            .enumerate()
            .filter(|(idx, t)| !t.is_constant() && first[*idx].is_some())
            .map(|(idx, t)| TensorLife {
                id: idx,
                size: t.byte_size(),
                first_use: first[idx].unwrap_or(0),
                last_use: last[idx].unwrap_or(first[idx].unwrap_or(0)),
            })
            .collect();

        // Fast convs need arena scratch for their im2col panel. Plan it
        // as a pseudo-tensor alive only at its own op, so the planner
        // overlaps scratch with whatever is dead at that step and
        // `invoke` stays allocation-free.
        let mut scratch_lens: Vec<usize> = vec![0; model.ops.len()];
        if kernels.is_fast() {
            for (op_idx, op) in model.ops.iter().enumerate() {
                let size = conv_scratch_layout(&model, op)?;
                if size > 0 {
                    scratch_lens[op_idx] = size;
                    lives.push(TensorLife {
                        id: model.tensors.len() + op_idx,
                        size,
                        first_use: op_idx,
                        last_use: op_idx,
                    });
                }
            }
        }
        let plan = plan_arena(&lives);
        let arena = vec![0i8; plan.arena_size];

        let mut interp = Interpreter {
            model,
            plan,
            arena,
            steps: Vec::new(),
            bias_pool,
            pending_taps: Vec::new(),
            tap_results: Vec::new(),
            kernels,
            vtable: kernels.vtable(),
            profiler: None,
        };
        let mut steps = Vec::with_capacity(interp.model.ops.len());
        for (op_idx, op) in interp.model.ops.iter().enumerate() {
            let scratch = (scratch_lens[op_idx] > 0).then(|| ScratchRange {
                off: interp
                    .plan
                    .offset_of(interp.model.tensors.len() + op_idx)
                    .expect("scratch pseudo-tensor was planned"),
                len: scratch_lens[op_idx],
            });
            steps.push(interp.compile(op, &bias_srcs, scratch)?);
        }
        interp.steps = steps;
        built_counter().inc();
        Ok(interp)
    }

    /// Turns on per-op profiling (resetting any previous profile). The
    /// accumulator table is allocated here, once — subsequent invokes
    /// record timings without allocating, so the zero-allocation hot-path
    /// guarantee holds with profiling enabled.
    pub fn enable_profiling(&mut self) {
        let kernels = self.steps.iter().map(|s| s.kind.kernel_name()).collect();
        self.profiler = Some(crate::profiler::Profiler::new(kernels));
    }

    /// Turns profiling back off, dropping the accumulated timings.
    pub fn disable_profiling(&mut self) {
        self.profiler = None;
    }

    /// Snapshot of per-op timings since [`Self::enable_profiling`], or
    /// `None` when profiling is disabled. `profile().dominant()` names
    /// the hot kernel of an invoke.
    pub fn profile(&self) -> Option<crate::profiler::Profile> {
        self.profiler.as_ref().map(|p| p.snapshot())
    }

    /// Resolves the arena range of an activation tensor.
    fn activation_range(&self, id: TensorId) -> Result<(usize, usize)> {
        let t = self.model.tensor(id)?;
        let offset = self
            .plan
            .offset_of(id.index())
            .ok_or(NnError::UnknownTensor { id: id.index() })?;
        Ok((offset, t.byte_size()))
    }

    /// Resolves where a step's data input comes from.
    fn resolve_src(&self, id: TensorId) -> Result<Src> {
        let t = self.model.tensor(id)?;
        if let Some(buffer) = t.buffer() {
            if t.dtype() != DType::I8 {
                return Err(NnError::DtypeMismatch {
                    context: "constant data inputs must be i8",
                });
            }
            return Ok(Src::Constant { buffer });
        }
        let (off, len) = self.activation_range(id)?;
        Ok(Src::Arena { off, len })
    }

    /// Resolves a constant i8 filter tensor to its buffer index.
    fn resolve_filter(&self, id: TensorId) -> Result<usize> {
        let t = self.model.tensor(id)?;
        match (t.dtype(), t.buffer()) {
            (DType::I8, Some(buffer)) => Ok(buffer),
            _ => Err(NnError::DtypeMismatch {
                context: "filter must be constant i8",
            }),
        }
    }

    /// Checks that a step's arena input, output, and scratch ranges are
    /// pairwise disjoint, so the executor's split borrows cannot alias.
    /// The planner guarantees this (the lifetimes all overlap at the op),
    /// but the invariant is load-bearing for `split3`, so verify at
    /// compile time.
    fn check_disjoint(&self, step: &CompiledStep) -> Result<()> {
        let disjoint = |a: (usize, usize), b: (usize, usize)| {
            a.0 + a.1 <= b.0 || b.0 + b.1 <= a.0 || a.1 == 0 || b.1 == 0
        };
        let out = (step.out_off, step.out_len);
        let scratch = step.scratch.map(|s| (s.off, s.len)).unwrap_or((0, 0));
        if let Src::Arena { off, len } = step.input {
            if !disjoint((off, len), out) || !disjoint((off, len), scratch) {
                return Err(NnError::MalformedModel(
                    "arena plan aliases a step's input with its output or scratch",
                ));
            }
        }
        if !disjoint(out, scratch) {
            return Err(NnError::MalformedModel(
                "arena plan aliases a step's output and scratch",
            ));
        }
        Ok(())
    }

    fn compile(
        &self,
        op: &Op,
        bias_srcs: &[Option<BiasSrc>],
        scratch: Option<ScratchRange>,
    ) -> Result<CompiledStep> {
        let act_range = |activation: Activation, out_zp: i32| -> (i8, i8) {
            match activation {
                Activation::None => (-128, 127),
                Activation::Relu => (out_zp.clamp(-128, 127) as i8, 127),
            }
        };
        let bias_range = |id: TensorId| -> Result<BiasSrc> {
            bias_srcs[id.index()].ok_or(NnError::DtypeMismatch {
                context: "bias must be constant i32",
            })
        };
        let output = op.output();
        let (out_off, out_len) = self.activation_range(output)?;
        let kind = match *op {
            Op::Conv2D {
                input,
                filter,
                bias,
                output,
                stride_h,
                stride_w,
                padding,
                activation,
            }
            | Op::DepthwiseConv2D {
                input,
                filter,
                bias,
                output,
                stride_h,
                stride_w,
                padding,
                activation,
                ..
            } => {
                let (it, ft, ot) = (
                    self.model.tensor(input)?,
                    self.model.tensor(filter)?,
                    self.model.tensor(output)?,
                );
                let in_q = it.quant().expect("validated");
                let w_q = ft.quant().expect("validated");
                let out_q = ot.quant().expect("validated");
                let multiplier = FixedMultiplier::from_real(
                    f64::from(in_q.scale) * f64::from(w_q.scale) / f64::from(out_q.scale),
                )?;
                let context = match op {
                    Op::Conv2D { .. } => "Conv2D",
                    _ => "DepthwiseConv2D",
                };
                let ConvGeometry {
                    input_shape,
                    filter_shape,
                    output_shape,
                    stride: _,
                    pad,
                } = conv_geometry(
                    &self.model,
                    input,
                    filter,
                    output,
                    (stride_h, stride_w),
                    padding,
                    context,
                )?;
                let (act_min, act_max) = act_range(activation, out_q.zero_point);
                let depthwise = match *op {
                    Op::DepthwiseConv2D {
                        depth_multiplier, ..
                    } => Some(depth_multiplier),
                    _ => None,
                };
                let filter_buf = self.resolve_filter(filter)?;
                // The fast GEMM hoists the input zero point via per-row
                // filter sums; the filter is constant, so compute them
                // once here instead of on every invoke.
                let row_sums = if depthwise.is_none() && self.kernels.is_fast() {
                    let k = filter_shape[1] * filter_shape[2] * filter_shape[3];
                    let mut sums = vec![0i32; filter_shape[0]];
                    gemm::row_sums(
                        as_i8(self.model.buffer(filter_buf)?),
                        filter_shape[0],
                        k,
                        &mut sums,
                    );
                    sums
                } else {
                    Vec::new()
                };
                StepKind::Conv2D {
                    filter_buf,
                    bias: bias_range(bias)?,
                    input_shape,
                    filter_shape,
                    output_shape,
                    stride: (stride_h, stride_w),
                    pad,
                    input_offset: -in_q.zero_point,
                    output_offset: out_q.zero_point,
                    multiplier,
                    act_min,
                    act_max,
                    depthwise,
                    row_sums,
                }
            }
            Op::FullyConnected {
                input,
                filter,
                bias,
                output,
                activation,
            } => {
                let (it, ft, ot) = (
                    self.model.tensor(input)?,
                    self.model.tensor(filter)?,
                    self.model.tensor(output)?,
                );
                let in_q = it.quant().expect("validated");
                let w_q = ft.quant().expect("validated");
                let out_q = ot.quant().expect("validated");
                let multiplier = FixedMultiplier::from_real(
                    f64::from(in_q.scale) * f64::from(w_q.scale) / f64::from(out_q.scale),
                )?;
                let (act_min, act_max) = act_range(activation, out_q.zero_point);
                StepKind::FullyConnected {
                    filter_buf: self.resolve_filter(filter)?,
                    bias: bias_range(bias)?,
                    in_features: ft.shape()[1],
                    out_features: ft.shape()[0],
                    input_offset: -in_q.zero_point,
                    output_offset: out_q.zero_point,
                    multiplier,
                    act_min,
                    act_max,
                }
            }
            Op::AveragePool2D {
                input,
                output,
                filter_h,
                filter_w,
                stride_h,
                stride_w,
                padding,
            }
            | Op::MaxPool2D {
                input,
                output,
                filter_h,
                filter_w,
                stride_h,
                stride_w,
                padding,
            } => {
                let (it, ot) = (self.model.tensor(input)?, self.model.tensor(output)?);
                let input_shape = shape4(it.shape(), "Pool2D input")?;
                let output_shape = shape4(ot.shape(), "Pool2D output")?;
                let pad = match padding {
                    Padding::Same => (
                        same_padding(input_shape[1], filter_h, stride_h).0,
                        same_padding(input_shape[2], filter_w, stride_w).0,
                    ),
                    Padding::Valid => (0, 0),
                };
                StepKind::Pool2D {
                    input_shape,
                    output_shape,
                    filter: (filter_h, filter_w),
                    stride: (stride_h, stride_w),
                    pad,
                    is_max: matches!(op, Op::MaxPool2D { .. }),
                }
            }
            Op::Softmax { input, .. } => {
                let it = self.model.tensor(input)?;
                let q = it.quant().expect("validated");
                StepKind::Softmax {
                    input_scale: q.scale,
                    input_zp: q.zero_point,
                }
            }
            Op::Reshape { .. } => StepKind::Copy,
        };
        let input = match *op {
            Op::Conv2D { input, .. }
            | Op::DepthwiseConv2D { input, .. }
            | Op::FullyConnected { input, .. }
            | Op::AveragePool2D { input, .. }
            | Op::MaxPool2D { input, .. }
            | Op::Softmax { input, .. }
            | Op::Reshape { input, .. } => self.resolve_src(input)?,
        };
        let step = CompiledStep {
            output,
            input,
            out_off,
            out_len,
            scratch,
            kind,
        };
        self.check_disjoint(&step)?;
        Ok(step)
    }

    /// The wrapped model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Which kernel implementation set this interpreter executes with.
    pub fn kernels(&self) -> KernelSet {
        self.kernels
    }

    /// Bytes of activation arena in use (the "tensor arena" a TFLM port
    /// must reserve inside the enclave).
    pub fn arena_size(&self) -> usize {
        self.plan.arena_size
    }

    /// Bytes of int32 bias data this interpreter had to *decode* into its
    /// fallback pool instead of borrowing from the model's buffers. Zero
    /// for every model loaded from aligned storage (OMGM v2 images and
    /// builder-constructed models) — i.e. construction copied no tensor
    /// data at all. The provisioning bench regression-asserts this.
    pub fn decoded_bias_bytes(&self) -> usize {
        self.bias_pool.len() * std::mem::size_of::<i32>()
    }

    /// Zeroes the activation arena and drops any tap snapshots, so no
    /// residue of a previous query's activations survives. Warm serving
    /// paths call this between queries from different principals.
    pub fn scrub(&mut self) {
        self.arena.fill(0);
        self.tap_results.clear();
    }

    /// Whether every arena byte is zero (test/diagnostic hook for the
    /// scrub-between-queries security property).
    pub fn arena_is_scrubbed(&self) -> bool {
        self.arena.iter().all(|&b| b == 0)
    }

    /// Runs the model and snapshots the named activation tensors right
    /// after their producing op executes — before the arena planner can
    /// reuse their memory. Returns the snapshots in `taps` order.
    ///
    /// This is the embedding-extraction hook: e.g. tapping the post-ReLU
    /// convolution output of `tiny_conv` yields a 4400-dimensional utterance
    /// embedding usable for speaker verification.
    ///
    /// # Errors
    ///
    /// [`NnError::BadInputLength`] on input length mismatch;
    /// [`NnError::UnknownTensor`] if a tap names a constant or unused
    /// tensor.
    pub fn invoke_with_taps(&mut self, input: &[i8], taps: &[TensorId]) -> Result<Vec<Vec<i8>>> {
        // Validate taps up front so failures happen before compute.
        for &tap in taps {
            self.activation_range(tap)?;
        }
        self.pending_taps = taps.to_vec();
        self.tap_results.clear();
        let result = self.invoke(input);
        self.pending_taps.clear();
        result?;
        let mut out = Vec::with_capacity(taps.len());
        for &tap in taps {
            let snapshot = self
                .tap_results
                .iter()
                .find(|(id, _)| *id == tap)
                .map(|(_, data)| data.clone());
            match snapshot {
                Some(data) => out.push(data),
                None => {
                    // The tensor was never produced (e.g. the model input):
                    // read it from the arena directly.
                    let (off, len) = self.activation_range(tap)?;
                    out.push(self.arena[off..off + len].to_vec());
                }
            }
        }
        Ok(out)
    }

    /// Runs the model on quantized input (length must equal the input
    /// tensor's element count). Performs no heap allocation.
    ///
    /// # Errors
    ///
    /// [`NnError::BadInputLength`] on length mismatch.
    pub fn invoke(&mut self, input: &[i8]) -> Result<()> {
        let (in_off, in_len) = self.activation_range(self.model.input)?;
        if input.len() != in_len {
            return Err(NnError::BadInputLength {
                expected: in_len,
                got: input.len(),
            });
        }
        self.arena[in_off..in_off + in_len].copy_from_slice(input);
        // The input's arena slot may be reused by later ops; snapshot it now
        // if it is tapped.
        let model_input = self.model.input;
        if !self.pending_taps.is_empty() {
            Self::record_tap(
                &self.pending_taps,
                &mut self.tap_results,
                &self.arena,
                (in_off, in_len),
                model_input,
            );
        }

        let taps_active = !self.pending_taps.is_empty();
        let profiling = self.profiler.is_some();
        for step_idx in 0..self.steps.len() {
            let step_start = if profiling {
                omg_obs::monotonic_ns()
            } else {
                0
            };
            {
                // Split borrows: the step list, bias pool, and model buffers
                // are read-only; only the arena is written.
                let Interpreter {
                    steps,
                    arena,
                    model,
                    bias_pool,
                    kernels,
                    vtable,
                    ..
                } = self;
                exec_step(
                    &steps[step_idx],
                    arena,
                    &model.buffers,
                    bias_pool,
                    *kernels,
                    vtable,
                );
            }
            if let Some(p) = self.profiler.as_mut() {
                p.record_step(step_idx, omg_obs::monotonic_ns().saturating_sub(step_start));
            }
            if taps_active {
                let step = &self.steps[step_idx];
                let produced = step.output;
                let range = (step.out_off, step.out_len);
                Self::record_tap(
                    &self.pending_taps,
                    &mut self.tap_results,
                    &self.arena,
                    range,
                    produced,
                );
            }
        }
        if let Some(p) = self.profiler.as_mut() {
            p.invokes += 1;
        }
        Ok(())
    }

    fn record_tap(
        pending: &[TensorId],
        results: &mut Vec<(TensorId, Vec<i8>)>,
        arena: &[i8],
        (off, len): (usize, usize),
        produced: TensorId,
    ) {
        if pending.contains(&produced) {
            results.push((produced, arena[off..off + len].to_vec()));
        }
    }

    /// Runs the model over many inputs, reusing the arena across them and
    /// performing no per-input heap allocation. Each input's quantized
    /// output is handed to `sink` (with its index) before the next input
    /// overwrites the arena.
    ///
    /// # Errors
    ///
    /// [`NnError::BadInputLength`] for the first ill-sized input; inputs
    /// before it have already been processed and delivered.
    pub fn invoke_batch<F>(&mut self, inputs: &[&[i8]], mut sink: F) -> Result<()>
    where
        F: FnMut(usize, &[i8]),
    {
        let (out_off, out_len) = self.activation_range(self.model.output)?;
        for (idx, input) in inputs.iter().enumerate() {
            self.invoke(input)?;
            sink(idx, &self.arena[out_off..out_off + out_len]);
        }
        Ok(())
    }

    /// Batched classification: argmax + dequantized score per input, with a
    /// single result-vector allocation for the whole batch.
    ///
    /// # Errors
    ///
    /// Propagates `invoke` errors; [`NnError::MissingQuantization`] if the
    /// output has no parameters.
    pub fn classify_batch(&mut self, inputs: &[&[i8]]) -> Result<Vec<(usize, f32)>> {
        let q = self.output_quant()?;
        let mut out = Vec::with_capacity(inputs.len());
        self.invoke_batch(inputs, |_, quantized| {
            out.push(argmax_dequantized(quantized, q));
        })?;
        Ok(out)
    }

    /// The raw quantized output of the last `invoke`.
    ///
    /// # Errors
    ///
    /// [`NnError::UnknownTensor`] if the output tensor was never planned.
    pub fn output_quantized(&self) -> Result<&[i8]> {
        let (off, len) = self.activation_range(self.model.output)?;
        Ok(&self.arena[off..off + len])
    }

    fn output_quant(&self) -> Result<crate::quantize::QuantParams> {
        self.model
            .tensor(self.model.output)?
            .quant()
            .ok_or_else(|| NnError::MissingQuantization {
                tensor: "output".into(),
            })
    }

    /// The dequantized output of the last `invoke`.
    ///
    /// # Errors
    ///
    /// [`NnError::MissingQuantization`] if the output has no parameters.
    pub fn output_dequantized(&self) -> Result<Vec<f32>> {
        let q = self.output_quant()?;
        Ok(q.dequantize_slice(self.output_quantized()?))
    }

    /// Convenience: runs the model and returns `(argmax index, score)`.
    /// Allocation-free: the argmax is taken over the quantized output
    /// (dequantization is monotonic) and only the winner is dequantized.
    ///
    /// # Errors
    ///
    /// Propagates `invoke` errors.
    pub fn classify(&mut self, input: &[i8]) -> Result<(usize, f32)> {
        self.invoke(input)?;
        let q = self.output_quant()?;
        Ok(argmax_dequantized(self.output_quantized()?, q))
    }
}

/// Last-maximum argmax over the quantized output with the winner's
/// dequantized score (matches `max_by` + `partial_cmp` over the
/// dequantized vector, without materializing it).
fn argmax_dequantized(quantized: &[i8], q: crate::quantize::QuantParams) -> (usize, f32) {
    quantized
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1))
        .map(|(i, &v)| (i, q.dequantize(v)))
        .unwrap_or((0, 0.0))
}

/// Resolves a step's bias slice: borrowed from the model's aligned buffers
/// or (fallback) from the decoded pool.
fn bias_slice<'a>(src: BiasSrc, buffers: &'a [ByteView], bias_pool: &'a [i32]) -> &'a [i32] {
    match src {
        BiasSrc::Borrowed(buf) => as_i32(&buffers[buf]),
        BiasSrc::Pool(start, end) => &bias_pool[start..end],
    }
}

/// Executes one precompiled step. Infallible: every range and parameter was
/// validated at compile time, and the only memory touched is the arena, the
/// model's constant buffers, the bias pool, and the step's planned scratch.
fn exec_step(
    step: &CompiledStep,
    arena: &mut [i8],
    buffers: &[ByteView],
    bias_pool: &[i32],
    kernel_set: KernelSet,
    vt: &'static arch::KernelVTable,
) {
    // Obtain the input, output, and scratch slices via split borrows. A
    // constant input borrows the model buffer instead, leaving the whole
    // arena free for the output and scratch.
    let scratch_range = step.scratch.map(|s| (s.off, s.len)).unwrap_or((0, 0));
    let (input, output, scratch): (&[i8], &mut [i8], &mut [i8]) = match step.input {
        Src::Arena { off, len } => {
            let [inp, out, scr] = split3(
                arena,
                [(off, len), (step.out_off, step.out_len), scratch_range],
            );
            (inp, out, scr)
        }
        Src::Constant { buffer } => {
            let [out, scr, _] =
                split3(arena, [(step.out_off, step.out_len), scratch_range, (0, 0)]);
            (as_i8(&buffers[buffer]), out, scr)
        }
    };
    let fast = kernel_set.is_fast();
    match step.kind {
        StepKind::Conv2D {
            filter_buf,
            bias,
            input_shape,
            filter_shape,
            output_shape,
            stride,
            pad,
            input_offset,
            output_offset,
            multiplier,
            act_min,
            act_max,
            depthwise,
            ref row_sums,
        } => {
            let filter = as_i8(&buffers[filter_buf]);
            let bias = bias_slice(bias, buffers, bias_pool);
            let args = kernels::Conv2DArgs {
                input,
                input_shape,
                filter,
                filter_shape,
                bias,
                output,
                output_shape,
                stride,
                pad,
                input_offset,
                output_offset,
                multiplier,
                act_min,
                act_max,
            };
            match (depthwise, fast) {
                (None, true) => kernels_fast::conv2d_with(vt, args, row_sums, scratch),
                (None, false) => kernels::conv2d(args),
                (Some(mult), _) => {
                    let args = kernels::DepthwiseConv2DArgs {
                        input,
                        input_shape,
                        filter,
                        filter_shape,
                        bias,
                        output,
                        output_shape,
                        depth_multiplier: mult,
                        stride,
                        pad,
                        input_offset,
                        output_offset,
                        multiplier,
                        act_min,
                        act_max,
                    };
                    if fast {
                        kernels_fast::depthwise_conv2d(args);
                    } else {
                        kernels::depthwise_conv2d(args);
                    }
                }
            }
        }
        StepKind::FullyConnected {
            filter_buf,
            bias,
            in_features,
            out_features,
            input_offset,
            output_offset,
            multiplier,
            act_min,
            act_max,
        } => {
            let filter = as_i8(&buffers[filter_buf]);
            let bias = bias_slice(bias, buffers, bias_pool);
            let args = kernels::FullyConnectedArgs {
                input,
                filter,
                bias,
                output,
                in_features,
                out_features,
                input_offset,
                output_offset,
                multiplier,
                act_min,
                act_max,
            };
            if fast {
                kernels_fast::fully_connected_with(vt, args);
            } else {
                kernels::fully_connected(args);
            }
        }
        StepKind::Pool2D {
            input_shape,
            output_shape,
            filter,
            stride,
            pad,
            is_max,
        } => {
            let args = kernels::Pool2DArgs {
                input,
                input_shape,
                output,
                output_shape,
                filter,
                stride,
                pad,
            };
            match (is_max, fast) {
                (true, true) => kernels_fast::max_pool2d(args),
                (true, false) => kernels::max_pool2d(args),
                (false, true) => kernels_fast::average_pool2d(args),
                (false, false) => kernels::average_pool2d(args),
            }
        }
        StepKind::Softmax {
            input_scale,
            input_zp,
        } => {
            if fast {
                kernels_fast::softmax(input, input_scale, input_zp, output);
            } else {
                kernels::softmax(input, input_scale, input_zp, output);
            }
        }
        StepKind::Copy => {
            output.copy_from_slice(input);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Activation, Model, Op, Padding};
    use crate::quantize::QuantParams;
    use crate::tensor::DType;

    fn qp(scale: f32, zp: i32) -> QuantParams {
        QuantParams {
            scale,
            zero_point: zp,
        }
    }

    /// Builds a 2-layer model: conv (identity 1x1) -> fc.
    fn tiny_model() -> Model {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 2, 2, 1], DType::I8, Some(qp(1.0, 0)));
        let cf = b.add_weight_i8(
            "conv/w",
            vec![1, 1, 1, 1],
            vec![1],
            QuantParams::symmetric(1.0),
        );
        let cb = b.add_weight_i32("conv/b", vec![1], vec![0]);
        let conv_out = b.add_activation("conv", vec![1, 2, 2, 1], DType::I8, Some(qp(1.0, 0)));
        b.add_op(Op::Conv2D {
            input,
            filter: cf,
            bias: cb,
            output: conv_out,
            stride_h: 1,
            stride_w: 1,
            padding: Padding::Valid,
            activation: Activation::None,
        });
        let fw = b.add_weight_i8(
            "fc/w",
            vec![2, 4],
            vec![1, 1, 1, 1, 1, -1, 1, -1],
            QuantParams::symmetric(1.0),
        );
        let fb = b.add_weight_i32("fc/b", vec![2], vec![0, 0]);
        let fc_out = b.add_activation("fc", vec![1, 2], DType::I8, Some(qp(1.0, 0)));
        b.add_op(Op::FullyConnected {
            input: conv_out,
            filter: fw,
            bias: fb,
            output: fc_out,
            activation: Activation::None,
        });
        b.set_input(input);
        b.set_output(fc_out);
        b.set_labels(["sum", "diff"]);
        b.build().unwrap()
    }

    #[test]
    fn end_to_end_two_layer() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        interp.invoke(&[1, 2, 3, 4]).unwrap();
        // fc row0 = sum = 10; row1 = 1-2+3-4 = -2.
        assert_eq!(interp.output_quantized().unwrap(), &[10, -2]);
        let deq = interp.output_dequantized().unwrap();
        assert_eq!(deq, vec![10.0, -2.0]);
    }

    #[test]
    fn classify_returns_argmax() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        let (idx, score) = interp.classify(&[1, 2, 3, 4]).unwrap();
        assert_eq!(idx, 0);
        assert_eq!(score, 10.0);
    }

    #[test]
    fn bad_input_length_rejected() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        assert!(matches!(
            interp.invoke(&[1, 2, 3]),
            Err(NnError::BadInputLength {
                expected: 4,
                got: 3
            })
        ));
    }

    #[test]
    fn invoke_is_deterministic_and_reusable() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        interp.invoke(&[5, 5, 5, 5]).unwrap();
        let first = interp.output_quantized().unwrap().to_vec();
        interp.invoke(&[1, 1, 1, 1]).unwrap();
        interp.invoke(&[5, 5, 5, 5]).unwrap();
        assert_eq!(interp.output_quantized().unwrap(), &first[..]);
    }

    #[test]
    fn arena_smaller_than_total_activations() {
        // in (4) + conv (4) + fc (2) = 10 total, but in/fc don't coexist
        // with everything simultaneously. The tiny model's 1x1/s1/p0 conv
        // reads its input in place, so even the fast interpreter plans no
        // im2col scratch and the two kernel sets agree on the arena.
        let reference = Interpreter::with_kernels(tiny_model(), KernelSet::Reference).unwrap();
        assert!(reference.arena_size() <= 10);
        assert!(reference.arena_size() >= 8); // conv co-lives with in and fc

        let fast = Interpreter::with_kernels(tiny_model(), KernelSet::Simd).unwrap();
        assert_eq!(fast.arena_size(), reference.arena_size());
    }

    #[test]
    fn kernel_set_env_parsing_and_default() {
        assert_eq!(KernelSet::parse(None), KernelSet::Simd);
        assert_eq!(KernelSet::parse(Some("simd")), KernelSet::Simd);
        assert_eq!(KernelSet::parse(Some("fast")), KernelSet::Simd); // legacy alias
        assert_eq!(KernelSet::parse(Some("portable")), KernelSet::Portable);
        assert_eq!(KernelSet::parse(Some("reference")), KernelSet::Reference);
        assert_eq!(KernelSet::parse(Some("ref")), KernelSet::Reference);
        assert_eq!(KernelSet::parse(Some("garbage")), KernelSet::Simd);
        // Every tier resolves to a concrete vtable; only Simd may differ
        // from the portable lanes code, and only when the CPU supports it.
        assert_eq!(KernelSet::Portable.vtable().name, "portable");
        assert_eq!(KernelSet::Reference.vtable().name, "portable");
        // The constructor seam records the selection.
        let interp = Interpreter::with_kernels(tiny_model(), KernelSet::Reference).unwrap();
        assert_eq!(interp.kernels(), KernelSet::Reference);
        // `new` honors the real OMG_KERNELS toggle, so assert against it
        // (CI runs this suite once more with OMG_KERNELS=portable pinned).
        let expect = KernelSet::parse(std::env::var("OMG_KERNELS").ok().as_deref());
        assert_eq!(Interpreter::new(tiny_model()).unwrap().kernels(), expect);
    }

    #[test]
    fn fast_and_reference_kernels_agree_end_to_end() {
        let mut fast = Interpreter::with_kernels(tiny_model(), KernelSet::Simd).unwrap();
        let mut reference = Interpreter::with_kernels(tiny_model(), KernelSet::Reference).unwrap();
        for input in [[1i8, 2, 3, 4], [-5, 0, 127, -128], [9, 9, 9, 9]] {
            fast.invoke(&input).unwrap();
            reference.invoke(&input).unwrap();
            assert_eq!(
                fast.output_quantized().unwrap(),
                reference.output_quantized().unwrap()
            );
        }
    }

    #[test]
    fn softmax_pipeline() {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 4], DType::I8, Some(qp(0.1, 0)));
        let out = b.add_activation("probs", vec![1, 4], DType::I8, Some(qp(1.0 / 256.0, -128)));
        b.add_op(Op::Softmax { input, output: out });
        b.set_input(input);
        b.set_output(out);
        let mut interp = Interpreter::new(b.build().unwrap()).unwrap();
        interp.invoke(&[0, 10, 20, 30]).unwrap();
        let probs = interp.output_dequantized().unwrap();
        let total: f32 = probs.iter().sum();
        assert!((total - 1.0).abs() < 0.05);
        assert!(probs[3] > probs[2]);
    }

    #[test]
    fn reshape_copies() {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 2, 2, 1], DType::I8, Some(qp(1.0, 0)));
        let out = b.add_activation("flat", vec![1, 4], DType::I8, Some(qp(1.0, 0)));
        b.add_op(Op::Reshape { input, output: out });
        b.set_input(input);
        b.set_output(out);
        let mut interp = Interpreter::new(b.build().unwrap()).unwrap();
        interp.invoke(&[9, 8, 7, 6]).unwrap();
        assert_eq!(interp.output_quantized().unwrap(), &[9, 8, 7, 6]);
    }

    #[test]
    fn taps_snapshot_intermediate_activations() {
        let model = tiny_model();
        // Tap the conv output (tensor id 3 in tiny_model construction order:
        // in=0, conv/w=1, conv/b=2, conv=3).
        let conv_out = TensorId(3);
        let mut interp = Interpreter::new(model).unwrap();
        let taps = interp.invoke_with_taps(&[1, 2, 3, 4], &[conv_out]).unwrap();
        assert_eq!(taps.len(), 1);
        // Identity conv: the tap equals the input.
        assert_eq!(taps[0], vec![1, 2, 3, 4]);
        // Final output unaffected.
        assert_eq!(interp.output_quantized().unwrap(), &[10, -2]);
    }

    #[test]
    fn taps_reject_constant_tensors() {
        let model = tiny_model();
        let weight_tensor = TensorId(1);
        let mut interp = Interpreter::new(model).unwrap();
        assert!(interp
            .invoke_with_taps(&[1, 2, 3, 4], &[weight_tensor])
            .is_err());
    }

    #[test]
    fn tapping_the_input_returns_it() {
        let model = tiny_model();
        let input_tensor = TensorId(0);
        let mut interp = Interpreter::new(model).unwrap();
        let taps = interp
            .invoke_with_taps(&[5, 6, 7, 8], &[input_tensor])
            .unwrap();
        assert_eq!(taps[0], vec![5, 6, 7, 8]);
    }

    #[test]
    fn max_pool_pipeline() {
        let mut b = Model::builder();
        let input = b.add_activation("in", vec![1, 2, 2, 1], DType::I8, Some(qp(1.0, 0)));
        let out = b.add_activation("pooled", vec![1, 1, 1, 1], DType::I8, Some(qp(1.0, 0)));
        b.add_op(Op::MaxPool2D {
            input,
            output: out,
            filter_h: 2,
            filter_w: 2,
            stride_h: 2,
            stride_w: 2,
            padding: Padding::Valid,
        });
        b.set_input(input);
        b.set_output(out);
        let mut interp = Interpreter::new(b.build().unwrap()).unwrap();
        interp.invoke(&[3, 1, 4, 1]).unwrap();
        assert_eq!(interp.output_quantized().unwrap(), &[4]);
    }

    #[test]
    fn invoke_batch_matches_sequential_invokes() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        let inputs: Vec<Vec<i8>> = vec![
            vec![1, 2, 3, 4],
            vec![5, 5, 5, 5],
            vec![-1, -2, -3, -4],
            vec![0, 0, 0, 0],
        ];
        let refs: Vec<&[i8]> = inputs.iter().map(Vec::as_slice).collect();
        let mut batched: Vec<Vec<i8>> = Vec::new();
        interp
            .invoke_batch(&refs, |idx, out| {
                assert_eq!(idx, batched.len());
                batched.push(out.to_vec());
            })
            .unwrap();
        assert_eq!(batched.len(), inputs.len());
        for (input, expected) in inputs.iter().zip(&batched) {
            let mut fresh = Interpreter::new(tiny_model()).unwrap();
            fresh.invoke(input).unwrap();
            assert_eq!(fresh.output_quantized().unwrap(), expected.as_slice());
        }
    }

    #[test]
    fn classify_batch_matches_classify() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        let inputs: Vec<Vec<i8>> = vec![vec![1, 2, 3, 4], vec![-4, 1, -1, 2]];
        let refs: Vec<&[i8]> = inputs.iter().map(Vec::as_slice).collect();
        let batch = interp.classify_batch(&refs).unwrap();
        for (input, &(idx, score)) in inputs.iter().zip(&batch) {
            let mut fresh = Interpreter::new(tiny_model()).unwrap();
            assert_eq!(fresh.classify(input).unwrap(), (idx, score));
        }
    }

    #[test]
    fn invoke_batch_rejects_bad_lengths_midway() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        let good: &[i8] = &[1, 2, 3, 4];
        let bad: &[i8] = &[1, 2];
        let mut seen = 0;
        let err = interp.invoke_batch(&[good, bad], |_, _| seen += 1);
        assert!(matches!(err, Err(NnError::BadInputLength { .. })));
        assert_eq!(seen, 1, "the good input was delivered before the error");
    }

    #[test]
    fn scrub_clears_the_arena() {
        let mut interp = Interpreter::new(tiny_model()).unwrap();
        interp.invoke(&[9, 9, 9, 9]).unwrap();
        assert!(!interp.arena_is_scrubbed(), "activations present after run");
        interp.scrub();
        assert!(interp.arena_is_scrubbed());
        // Scrubbing does not poison later runs.
        interp.invoke(&[1, 2, 3, 4]).unwrap();
        assert_eq!(interp.output_quantized().unwrap(), &[10, -2]);
    }

    #[test]
    fn constant_data_input_is_borrowed_not_copied() {
        // A model whose op reads a constant tensor directly (softmax over a
        // constant): exercises the Src::Constant execution path.
        let mut b = Model::builder();
        let konst = b.add_weight_i8("k", vec![1, 4], vec![0, 10, 20, 30], qp(0.1, 0));
        let input = b.add_activation("in", vec![1, 1], DType::I8, Some(qp(1.0, 0)));
        let probs = b.add_activation("probs", vec![1, 4], DType::I8, Some(qp(1.0 / 256.0, -128)));
        b.add_op(Op::Softmax {
            input: konst,
            output: probs,
        });
        b.set_input(input);
        b.set_output(probs);
        let mut interp = Interpreter::new(b.build().unwrap()).unwrap();
        interp.invoke(&[0]).unwrap();
        let out = interp.output_dequantized().unwrap();
        assert!(out[3] > out[0]);
    }
}
