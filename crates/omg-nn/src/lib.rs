//! A TensorFlow-Lite-Micro-style int8 inference engine.
//!
//! The OMG paper runs keyword recognition with "TensorFlow Lite for
//! Microcontrollers" inside a SANCTUARY enclave (paper §VI). This crate
//! reproduces the relevant slice of TFLM in Rust:
//!
//! * [`quantize`] — affine int8 quantization and the gemmlowp fixed-point
//!   requantization pipeline, bit-matching the TFLite reference kernels;
//! * [`kernels`] — reference int8 Conv2D / DepthwiseConv2D / FullyConnected
//!   / pooling / softmax, kept verbatim as the correctness oracle;
//! * [`gemm`] — blocked int8 GEMM core + im2col packing, with an optional
//!   row-panel threaded path (`OMG_GEMM_THREADS`);
//! * [`arch`] — runtime CPU-feature dispatch: AVX2 (x86_64) / NEON
//!   (aarch64) `i8×i8→i32` dot microkernels behind a vtable, with the
//!   portable lanes code as the always-available fallback;
//! * [`kernels_fast`] — the default execution kernels: conv lowered onto
//!   the GEMM, window kernels restructured into vectorizable lanes,
//!   bit-exact with [`kernels`] (select a tier with
//!   [`interpreter::KernelSet`] or `OMG_KERNELS=reference|portable|simd`);
//! * [`model`] — the operator graph and its builder;
//! * [`planner`] — TFLM-style greedy arena planning (no heap at inference);
//! * [`interpreter`] — the arena-based executor;
//! * [`format`] — the compact binary serialization the vendor encrypts and
//!   ships (the `.tflite` stand-in; the paper's `tiny_conv` model is ≈49 kB).
//!
//! # Examples
//!
//! Build, serialize and run a single-layer classifier:
//!
//! ```
//! use omg_nn::interpreter::Interpreter;
//! use omg_nn::model::{Activation, Model, Op};
//! use omg_nn::quantize::QuantParams;
//! use omg_nn::tensor::DType;
//!
//! let mut b = Model::builder();
//! let input = b.add_activation("in", vec![1, 4], DType::I8,
//!     Some(QuantParams { scale: 1.0, zero_point: 0 }));
//! let w = b.add_weight_i8("w", vec![2, 4], vec![1, 1, 1, 1, 1, -1, 1, -1],
//!     QuantParams::symmetric(1.0));
//! let bias = b.add_weight_i32("b", vec![2], vec![0, 0]);
//! let out = b.add_activation("out", vec![1, 2], DType::I8,
//!     Some(QuantParams { scale: 1.0, zero_point: 0 }));
//! b.add_op(Op::FullyConnected { input, filter: w, bias, output: out,
//!     activation: Activation::None });
//! b.set_input(input);
//! b.set_output(out);
//! let model = b.build()?;
//!
//! let blob = omg_nn::format::serialize(&model);
//! let mut interp = Interpreter::new(omg_nn::format::deserialize(&blob)?)?;
//! interp.invoke(&[1, 2, 3, 4])?;
//! assert_eq!(interp.output_quantized()?, &[10, -2]);
//! # Ok::<(), omg_nn::NnError>(())
//! ```

#![warn(missing_docs)]

pub mod arch;
pub mod buffer;
mod error;
pub mod format;
pub mod gemm;
pub mod interpreter;
pub mod kernels;
pub mod kernels_fast;
pub mod model;
pub mod planner;
pub mod profiler;
pub mod quantize;
pub mod tensor;

pub use buffer::{AlignedBytes, ModelBuf};
pub use error::{NnError, Result};
pub use interpreter::{Interpreter, KernelSet};
pub use model::Model;
