//! Verifies the zero-copy execution engine's core claims:
//!
//! * after construction, `invoke`, `classify`, and `invoke_batch` perform
//!   **zero heap allocations** — no `Step` clones, no decoded weight
//!   copies, no scratch buffers;
//! * `Interpreter::new` on a model loaded from an OMGM v2 image performs
//!   **no tensor-data allocations** — weights *and* biases are borrowed
//!   from the shared decrypted image, so construction cost is independent
//!   of model size (only the activation arena and fixed-size step/plan
//!   structures are allocated).
//!
//! A counting global allocator wraps the system allocator. Counters are
//! **thread-local** (const-initialized, so reading them never itself
//! allocates): the claims under test are about the invoking thread's hot
//! path, and per-thread counting keeps harness machinery on other
//! threads (test runner, io capture) from perturbing the measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use omg_nn::model::{Activation, Model, Op, Padding};
use omg_nn::quantize::QuantParams;
use omg_nn::tensor::DType;
use omg_nn::{Interpreter, KernelSet, ModelBuf};

struct CountingAllocator;

thread_local! {
    static ALLOCATIONS: Cell<usize> = const { Cell::new(0) };
    static ALLOCATED_BYTES: Cell<usize> = const { Cell::new(0) };
}

fn allocations() -> usize {
    ALLOCATIONS.with(Cell::get)
}

fn allocated_bytes() -> usize {
    ALLOCATED_BYTES.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        ALLOCATED_BYTES.with(|c| c.set(c.get() + layout.size()));
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.with(|c| c.set(c.get() + 1));
        ALLOCATED_BYTES.with(|c| c.set(c.get() + new_size));
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// A conv → depthwise → maxpool → avgpool → fc → softmax model,
/// exercising every hot-path step kind — including the fast conv's
/// arena-planned im2col panel and both lane-blocked pools.
fn conv_fc_model() -> Model {
    let qp = |scale: f32, zp: i32| QuantParams {
        scale,
        zero_point: zp,
    };
    let mut b = Model::builder();
    let input = b.add_activation(
        "in",
        vec![1, 8, 8, 1],
        DType::I8,
        Some(qp(1.0 / 255.0, -128)),
    );
    let cw = b.add_weight_i8(
        "conv/w",
        vec![2, 3, 3, 1],
        (0..18).map(|i| (i % 5) as i8 - 2).collect(),
        QuantParams::symmetric(0.05),
    );
    let cb = b.add_weight_i32("conv/b", vec![2], vec![3, -3]);
    let conv = b.add_activation("conv", vec![1, 4, 4, 2], DType::I8, Some(qp(0.1, 0)));
    b.add_op(Op::Conv2D {
        input,
        filter: cw,
        bias: cb,
        output: conv,
        stride_h: 2,
        stride_w: 2,
        padding: Padding::Same,
        activation: Activation::Relu,
    });
    let dw = b.add_weight_i8(
        "dw/w",
        vec![1, 3, 3, 2],
        (0..18).map(|i| (i % 7) as i8 - 3).collect(),
        QuantParams::symmetric(0.04),
    );
    let db = b.add_weight_i32("dw/b", vec![2], vec![1, -2]);
    let dw_out = b.add_activation("dw", vec![1, 4, 4, 2], DType::I8, Some(qp(0.11, -1)));
    b.add_op(Op::DepthwiseConv2D {
        input: conv,
        filter: dw,
        bias: db,
        output: dw_out,
        stride_h: 1,
        stride_w: 1,
        depth_multiplier: 1,
        padding: Padding::Same,
        activation: Activation::None,
    });
    let mp = b.add_activation("maxpool", vec![1, 2, 2, 2], DType::I8, Some(qp(0.11, -1)));
    b.add_op(Op::MaxPool2D {
        input: dw_out,
        output: mp,
        filter_h: 2,
        filter_w: 2,
        stride_h: 2,
        stride_w: 2,
        padding: Padding::Valid,
    });
    let ap = b.add_activation("avgpool", vec![1, 1, 1, 2], DType::I8, Some(qp(0.11, -1)));
    b.add_op(Op::AveragePool2D {
        input: mp,
        output: ap,
        filter_h: 2,
        filter_w: 2,
        stride_h: 2,
        stride_w: 2,
        padding: Padding::Valid,
    });
    let fw = b.add_weight_i8(
        "fc/w",
        vec![4, 2],
        (0..8).map(|i| (i % 7) as i8 - 3).collect(),
        QuantParams::symmetric(0.02),
    );
    let fb = b.add_weight_i32("fc/b", vec![4], vec![0, 1, -1, 2]);
    let logits = b.add_activation("logits", vec![1, 4], DType::I8, Some(qp(0.5, 0)));
    b.add_op(Op::FullyConnected {
        input: ap,
        filter: fw,
        bias: fb,
        output: logits,
        activation: Activation::None,
    });
    let probs = b.add_activation("probs", vec![1, 4], DType::I8, Some(qp(1.0 / 256.0, -128)));
    b.add_op(Op::Softmax {
        input: logits,
        output: probs,
    });
    b.set_input(input);
    b.set_output(probs);
    b.set_labels(["up", "down", "left", "right"]);
    b.build().unwrap()
}

#[test]
fn hot_path_performs_zero_heap_allocations() {
    // Pin the SIMD tier (rather than trusting `new`, which honors
    // OMG_KERNELS): this test proves the im2col panel really lives in
    // the planned arena, not in per-invoke heap allocations, and the
    // dispatched dot kernels must not allocate either.
    let mut interp = Interpreter::with_kernels(conv_fc_model(), KernelSet::Simd).unwrap();
    assert_eq!(interp.kernels(), KernelSet::Simd);
    let input: Vec<i8> = (0..64).map(|i| (i * 3 % 256) as u8 as i8).collect();
    let inputs: Vec<&[i8]> = vec![&input; 8];

    // Warm up once (nothing on the hot path lazily allocates, but keep the
    // measurement honest regardless).
    interp.invoke(&input).unwrap();

    let before = allocations();
    for _ in 0..16 {
        interp.invoke(&input).unwrap();
    }
    let after_invoke = allocations();
    assert_eq!(
        after_invoke - before,
        0,
        "Interpreter::invoke allocated on the hot path"
    );

    // The full serving-path query: classify + interned-label lookup. With
    // labels stored as `Arc<str>`, handing out the label is a refcount
    // bump, so even the label-bearing path is allocation-free end to end.
    let mut label_len = 0usize;
    for _ in 0..16 {
        let (class, _score) = interp.classify(&input).unwrap();
        let label = interp.model().labels()[class].clone();
        label_len += label.len();
    }
    let after_classify = allocations();
    assert_eq!(
        after_classify - after_invoke,
        0,
        "Interpreter::classify + label lookup allocated on the hot path"
    );
    assert!(label_len > 0, "labels were actually produced");

    let mut checksum = 0i64;
    interp
        .invoke_batch(&inputs, |_, out| {
            checksum += out.iter().map(|&v| i64::from(v)).sum::<i64>();
        })
        .unwrap();
    let after_batch = allocations();
    assert_eq!(
        after_batch - after_classify,
        0,
        "Interpreter::invoke_batch allocated per input"
    );
    assert_ne!(checksum, 0, "batch produced real outputs");

    // Scrubbing between queries is also allocation-free.
    interp.scrub();
    let after_scrub = allocations();
    assert_eq!(after_scrub - after_batch, 0, "scrub allocated");

    // ---- Observability on: the hot path still allocates nothing --------
    //
    // Enable the per-op profiler (its accumulator table is allocated here,
    // once) and record flight-recorder events alongside each invoke — the
    // same instrumentation the serving workers run with. The profiled,
    // trace-stamped hot path must stay allocation-free.
    interp.enable_profiling();
    let recorder = omg_obs::FlightRecorder::new(1, 64);
    // Warm the monotonic clock's lazily initialized epoch.
    let _ = omg_obs::monotonic_ns();
    interp.invoke(&input).unwrap();

    let before_obs = allocations();
    for seq in 0..16u64 {
        recorder.record(0, omg_obs::Stage::ComputeStart, seq, 0);
        interp.invoke(&input).unwrap();
        recorder.record(0, omg_obs::Stage::ComputeEnd, seq, 0);
    }
    let after_obs = allocations();
    assert_eq!(
        after_obs - before_obs,
        0,
        "profiled invoke + flight-recorder stamping allocated on the hot path"
    );
    let profile = interp.profile().expect("profiling enabled");
    assert_eq!(profile.invokes, 17);
    assert!(profile.dominant().is_some());
    assert_eq!(recorder.total_recorded(), 32);
    interp.disable_profiling();

    // ---- Interpreter::new on a v2 image copies no tensor data ----------
    //
    // Build a model whose weights dwarf its activations (a 64×4096 FC is
    // 256 KiB of weights against a ~4 KiB arena), serialize it to the v2
    // container, and load it zero-copy. Constructing an interpreter may
    // allocate its fixed-size structures and the activation arena, but
    // nothing proportional to the weights: every weight and bias is
    // borrowed from the shared image.
    let big = big_fc_model();
    let weight_bytes = big.weight_bytes();
    assert!(
        weight_bytes > 250_000,
        "model not big enough to be probative"
    );
    let image = ModelBuf::copy_from_slice(&omg_nn::format::serialize(&big));
    drop(big);

    let model = omg_nn::format::deserialize_shared(image.clone()).unwrap();
    let before_bytes = allocated_bytes();
    let interp2 = Interpreter::new(model).unwrap();
    let new_bytes = allocated_bytes() - before_bytes;
    let budget = interp2.arena_size() + 16 * 1024;
    assert!(
        new_bytes <= budget,
        "Interpreter::new allocated {new_bytes} bytes (arena {} + 16 KiB slack allowed) \
         for a {weight_bytes}-byte model: tensor data was copied",
        interp2.arena_size()
    );
    assert_eq!(
        interp2.decoded_bias_bytes(),
        0,
        "v2-loaded biases must be borrowed, not decoded into a pool"
    );
}

/// A single-FC model with deliberately large weights (64 outputs × 4096
/// inputs), used to prove `Interpreter::new` cost is independent of model
/// size.
fn big_fc_model() -> Model {
    let mut b = Model::builder();
    let input = b.add_activation(
        "in",
        vec![1, 4096],
        DType::I8,
        Some(QuantParams {
            scale: 1.0 / 255.0,
            zero_point: -128,
        }),
    );
    let w = b.add_weight_i8(
        "w",
        vec![64, 4096],
        (0..64 * 4096).map(|i| (i % 11) as i8 - 5).collect(),
        QuantParams::symmetric(0.02),
    );
    let bias = b.add_weight_i32("b", vec![64], (0..64).collect());
    let out = b.add_activation(
        "logits",
        vec![1, 64],
        DType::I8,
        Some(QuantParams {
            scale: 0.5,
            zero_point: 0,
        }),
    );
    b.add_op(Op::FullyConnected {
        input,
        filter: w,
        bias,
        output: out,
        activation: Activation::None,
    });
    b.set_input(input);
    b.set_output(out);
    b.build().unwrap()
}
