//! Per-op profiler integration: on a `tiny_conv`-shaped model the profile
//! must name the convolution as the dominant kernel, the seam must be a
//! no-op while disabled, and re-enabling must reset the counts.

use omg_nn::model::{Activation, Model, Op, Padding};
use omg_nn::quantize::QuantParams;
use omg_nn::tensor::DType;
use omg_nn::Interpreter;

/// The paper's keyword-spotting architecture in miniature: one Conv2D over
/// the 49×10 audio fingerprint (8 filters of 10×8, stride 2) carrying
/// essentially all the arithmetic, then a fully-connected classifier and
/// softmax.
fn tiny_conv_like() -> Model {
    let qp = |scale: f32, zp: i32| QuantParams {
        scale,
        zero_point: zp,
    };
    let mut b = Model::builder();
    let input = b.add_activation(
        "fingerprint",
        vec![1, 49, 10, 1],
        DType::I8,
        Some(qp(1.0 / 255.0, -128)),
    );
    let cw = b.add_weight_i8(
        "conv/w",
        vec![8, 10, 8, 1],
        (0..8 * 10 * 8).map(|i| (i % 9) as i8 - 4).collect(),
        QuantParams::symmetric(0.03),
    );
    let cb = b.add_weight_i32("conv/b", vec![8], (0..8).collect());
    let conv = b.add_activation("conv", vec![1, 25, 5, 8], DType::I8, Some(qp(0.1, 0)));
    b.add_op(Op::Conv2D {
        input,
        filter: cw,
        bias: cb,
        output: conv,
        stride_h: 2,
        stride_w: 2,
        padding: Padding::Same,
        activation: Activation::Relu,
    });
    let fw = b.add_weight_i8(
        "fc/w",
        vec![4, 25 * 5 * 8],
        (0..4 * 25 * 5 * 8).map(|i| (i % 7) as i8 - 3).collect(),
        QuantParams::symmetric(0.02),
    );
    let fb = b.add_weight_i32("fc/b", vec![4], vec![0, 1, -1, 2]);
    let logits = b.add_activation("logits", vec![1, 4], DType::I8, Some(qp(0.5, 0)));
    b.add_op(Op::FullyConnected {
        input: conv,
        filter: fw,
        bias: fb,
        output: logits,
        activation: Activation::None,
    });
    let probs = b.add_activation("probs", vec![1, 4], DType::I8, Some(qp(1.0 / 256.0, -128)));
    b.add_op(Op::Softmax {
        input: logits,
        output: probs,
    });
    b.set_input(input);
    b.set_output(probs);
    b.set_labels(["yes", "no", "up", "down"]);
    b.build().unwrap()
}

fn fingerprint() -> Vec<i8> {
    (0..490).map(|i| (i * 7 % 256) as u8 as i8).collect()
}

#[test]
fn profile_names_the_dominant_kernel() {
    let mut interp = Interpreter::new(tiny_conv_like()).unwrap();
    assert!(
        interp.profile().is_none(),
        "profiling must be off by default"
    );

    interp.enable_profiling();
    let input = fingerprint();
    for _ in 0..10 {
        interp.invoke(&input).unwrap();
    }

    let profile = interp.profile().unwrap();
    assert_eq!(profile.invokes, 10);
    assert_eq!(profile.entries.len(), 3);
    let kernels: Vec<&str> = profile.entries.iter().map(|e| e.kernel).collect();
    assert_eq!(kernels, ["conv2d", "fully_connected", "softmax"]);
    assert!(profile.entries.iter().all(|e| e.calls == 10));

    // The convolution does ~40x the FC's multiply-accumulates; the
    // profile must point at it.
    let hot = profile.dominant().expect("profiled invokes present");
    assert_eq!(hot.kernel, "conv2d", "\n{}", profile.report());
    assert_eq!(hot.step, 0);

    let report = profile.report();
    assert!(report.contains("10 invokes"), "{report}");
    assert!(report.contains("conv2d"), "{report}");

    // Disabling drops the profile; re-enabling starts from zero.
    interp.disable_profiling();
    assert!(interp.profile().is_none());
    interp.enable_profiling();
    let fresh = interp.profile().unwrap();
    assert_eq!(fresh.invokes, 0);
    assert!(fresh.dominant().is_none());
    interp.invoke(&input).unwrap();
    assert_eq!(interp.profile().unwrap().invokes, 1);
}

#[test]
fn profiled_output_is_bit_identical_to_unprofiled() {
    let input = fingerprint();
    let mut plain = Interpreter::new(tiny_conv_like()).unwrap();
    let baseline = plain.classify(&input).unwrap();

    let mut profiled = Interpreter::new(tiny_conv_like()).unwrap();
    profiled.enable_profiling();
    assert_eq!(profiled.classify(&input).unwrap(), baseline);
}
