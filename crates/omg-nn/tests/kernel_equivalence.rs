//! Differential proptests: the fast kernels (`omg_nn::kernels_fast`,
//! im2col + blocked GEMM, lane-restructured window loops) must produce
//! **bit-identical** outputs to the scalar TFLM reference oracle
//! (`omg_nn::kernels`) for every kernel, across randomized shapes,
//! strides, paddings, zero points, and activation clamps.
//!
//! The dot-product kernels (conv via GEMM, fully connected) dispatch
//! through a CPU-feature vtable ([`omg_nn::arch`]); every proptest runs
//! the fast path once per *available* tier — the portable lanes fallback
//! always, plus the detected SIMD vtable (AVX2/NEON) when it differs —
//! so the oracle proves each dispatched path exact, not just whichever
//! tier the host happens to pick.
//!
//! Generators are shrinking-friendly: every dimension comes from a range
//! strategy (which the vendored proptest halves toward its start), and
//! tensor data is cycled out of an independently shrinkable byte vector,
//! so a failing case minimizes toward the smallest shape and blandest
//! data that still disagrees.

use omg_nn::arch::{self, KernelVTable};
use omg_nn::gemm::{conv_im2col_len, row_sums};
use omg_nn::kernels::{self, Conv2DArgs, DepthwiseConv2DArgs, FullyConnectedArgs, Pool2DArgs};
use omg_nn::kernels_fast;
use omg_nn::model::{conv_output_size, same_padding, Padding};
use omg_nn::quantize::FixedMultiplier;
use proptest::prelude::*;

/// Every dispatch tier the host can actually execute: the portable
/// fallback, plus the detected SIMD vtable when it is a distinct
/// implementation.
fn tiers() -> Vec<&'static KernelVTable> {
    let mut tiers = vec![&arch::PORTABLE];
    let detected = arch::detect();
    if !std::ptr::eq(detected, &arch::PORTABLE) {
        tiers.push(detected);
    }
    tiers
}

/// Cycles `data` into a tensor of `len` elements, so shrinking the data
/// vector (even below `len`) can never index out of bounds.
fn cycle_i8(data: &[i8], len: usize) -> Vec<i8> {
    (0..len).map(|i| data[i % data.len()]).collect()
}

fn cycle_i32(data: &[i8], len: usize, spread: i32) -> Vec<i32> {
    (0..len)
        .map(|i| i32::from(data[(i * 7 + 3) % data.len()]) * spread)
        .collect()
}

/// Resolves padding amounts and the output spatial size the way the
/// interpreter does.
fn geometry(in_size: usize, kernel: usize, stride: usize, same: bool) -> (usize, usize) {
    let padding = if same { Padding::Same } else { Padding::Valid };
    let out = conv_output_size(in_size, kernel, stride, padding);
    let pad = if same {
        same_padding(in_size, kernel, stride).0
    } else {
        0
    };
    (out, pad)
}

/// Orders a clamp pair.
fn clamp(a: i8, b: i8) -> (i8, i8) {
    (a.min(b), a.max(b))
}

proptest! {
    /// conv2d: fast (im2col + GEMM) == reference, bit for bit.
    #[test]
    fn prop_conv2d_fast_matches_reference(
        dims in (1usize..7, 1usize..7, 1usize..4, 1usize..5),
        kernel in (1usize..4, 1usize..4, 1usize..3, 1usize..3),
        quant in (-128i32..=127, -128i32..=127, 1u32..9999),
        acts in (-128i8..=127i8, -128i8..=127i8, proptest::arbitrary::any::<bool>()),
        data in proptest::collection::vec(-128i8..=127i8, 1..48),
    ) {
        let (in_h, in_w, in_c, out_c) = dims;
        let (k_h, k_w, stride_h, stride_w) = kernel;
        let (in_zp, out_zp, mult_ppm) = quant;
        let (act_a, act_b, same) = acts;
        prop_assume!(k_h <= in_h + 1 && k_w <= in_w + 1);

        let (out_h, pad_h) = geometry(in_h, k_h, stride_h, same);
        let (out_w, pad_w) = geometry(in_w, k_w, stride_w, same);
        prop_assume!(out_h > 0 && out_w > 0);

        let input_shape = [1, in_h, in_w, in_c];
        let filter_shape = [out_c, k_h, k_w, in_c];
        let output_shape = [1, out_h, out_w, out_c];
        let input = cycle_i8(&data, in_h * in_w * in_c);
        let filter = cycle_i8(&data, out_c * k_h * k_w * in_c);
        let bias = cycle_i32(&data, out_c, 13);
        let multiplier = FixedMultiplier::from_real(f64::from(mult_ppm) * 1e-4).unwrap();
        let (act_min, act_max) = clamp(act_a, act_b);

        let run = |vt: Option<&'static KernelVTable>| -> Vec<i8> {
            let mut output = vec![0i8; out_h * out_w * out_c];
            let args = Conv2DArgs {
                input: &input,
                input_shape,
                filter: &filter,
                filter_shape,
                bias: &bias,
                output: &mut output,
                output_shape,
                stride: (stride_h, stride_w),
                pad: (pad_h, pad_w),
                input_offset: -in_zp,
                output_offset: out_zp,
                multiplier,
                act_min,
                act_max,
            };
            if let Some(vt) = vt {
                let im2col_len = conv_im2col_len(
                    filter_shape,
                    output_shape,
                    (stride_h, stride_w),
                    (pad_h, pad_w),
                );
                let mut sums = vec![0i32; out_c];
                row_sums(&filter, out_c, k_h * k_w * in_c, &mut sums);
                let mut scratch = vec![0i8; im2col_len];
                kernels_fast::conv2d_with(vt, args, &sums, &mut scratch);
            } else {
                kernels::conv2d(args);
            }
            output
        };
        let want = run(None);
        for vt in tiers() {
            prop_assert_eq!(&run(Some(vt)), &want, "conv2d diverged under tier {}", vt.name);
        }
    }

    /// depthwise_conv2d: lane-blocked fast path (and its multiplier > 1
    /// general path) == reference.
    #[test]
    fn prop_depthwise_fast_matches_reference(
        dims in (1usize..7, 1usize..7, 1usize..6, 1usize..3),
        kernel in (1usize..4, 1usize..4, 1usize..3, 1usize..3),
        quant in (-128i32..=127, -128i32..=127, 1u32..9999),
        acts in (-128i8..=127i8, -128i8..=127i8, proptest::arbitrary::any::<bool>()),
        data in proptest::collection::vec(-128i8..=127i8, 1..48),
    ) {
        let (in_h, in_w, in_c, depth_multiplier) = dims;
        let (k_h, k_w, stride_h, stride_w) = kernel;
        let (in_zp, out_zp, mult_ppm) = quant;
        let (act_a, act_b, same) = acts;
        prop_assume!(k_h <= in_h + 1 && k_w <= in_w + 1);

        let out_c = in_c * depth_multiplier;
        let (out_h, pad_h) = geometry(in_h, k_h, stride_h, same);
        let (out_w, pad_w) = geometry(in_w, k_w, stride_w, same);
        prop_assume!(out_h > 0 && out_w > 0);

        let input_shape = [1, in_h, in_w, in_c];
        let filter_shape = [1, k_h, k_w, out_c];
        let output_shape = [1, out_h, out_w, out_c];
        let input = cycle_i8(&data, in_h * in_w * in_c);
        let filter = cycle_i8(&data, k_h * k_w * out_c);
        let bias = cycle_i32(&data, out_c, 7);
        let multiplier = FixedMultiplier::from_real(f64::from(mult_ppm) * 1e-4).unwrap();
        let (act_min, act_max) = clamp(act_a, act_b);

        let run = |fast: bool| -> Vec<i8> {
            let mut output = vec![0i8; out_h * out_w * out_c];
            let args = DepthwiseConv2DArgs {
                input: &input,
                input_shape,
                filter: &filter,
                filter_shape,
                bias: &bias,
                output: &mut output,
                output_shape,
                depth_multiplier,
                stride: (stride_h, stride_w),
                pad: (pad_h, pad_w),
                input_offset: -in_zp,
                output_offset: out_zp,
                multiplier,
                act_min,
                act_max,
            };
            if fast {
                kernels_fast::depthwise_conv2d(args);
            } else {
                kernels::depthwise_conv2d(args);
            }
            output
        };
        prop_assert_eq!(run(true), run(false));
    }

    /// fully_connected: lane dot products == reference, including
    /// multi-batch inputs.
    #[test]
    fn prop_fully_connected_fast_matches_reference(
        dims in (1usize..4, 1usize..40, 1usize..12),
        quant in (-128i32..=127, -128i32..=127, 1u32..9999),
        acts in (-128i8..=127i8, -128i8..=127i8),
        data in proptest::collection::vec(-128i8..=127i8, 1..48),
    ) {
        let (batches, in_features, out_features) = dims;
        let (in_zp, out_zp, mult_ppm) = quant;
        let (act_a, act_b) = acts;

        let input = cycle_i8(&data, batches * in_features);
        let filter = cycle_i8(&data, out_features * in_features);
        let bias = cycle_i32(&data, out_features, 29);
        let multiplier = FixedMultiplier::from_real(f64::from(mult_ppm) * 1e-4).unwrap();
        let (act_min, act_max) = clamp(act_a, act_b);

        let run = |vt: Option<&'static KernelVTable>| -> Vec<i8> {
            let mut output = vec![0i8; batches * out_features];
            let args = FullyConnectedArgs {
                input: &input,
                filter: &filter,
                bias: &bias,
                output: &mut output,
                in_features,
                out_features,
                input_offset: -in_zp,
                output_offset: out_zp,
                multiplier,
                act_min,
                act_max,
            };
            if let Some(vt) = vt {
                kernels_fast::fully_connected_with(vt, args);
            } else {
                kernels::fully_connected(args);
            }
            output
        };
        let want = run(None);
        for vt in tiers() {
            prop_assert_eq!(
                &run(Some(vt)),
                &want,
                "fully_connected diverged under tier {}",
                vt.name
            );
        }
    }

    /// average_pool2d and max_pool2d: interior/border split == reference.
    #[test]
    fn prop_pools_fast_match_reference(
        dims in (1usize..8, 1usize..8, 1usize..6),
        window in (1usize..4, 1usize..4, 1usize..3, 1usize..3),
        same in proptest::arbitrary::any::<bool>(),
        data in proptest::collection::vec(-128i8..=127i8, 1..48),
    ) {
        let (in_h, in_w, c) = dims;
        let (f_h, f_w, stride_h, stride_w) = window;
        prop_assume!(f_h <= in_h + 1 && f_w <= in_w + 1);

        let (out_h, pad_h) = geometry(in_h, f_h, stride_h, same);
        let (out_w, pad_w) = geometry(in_w, f_w, stride_w, same);
        prop_assume!(out_h > 0 && out_w > 0);

        let input_shape = [1, in_h, in_w, c];
        let output_shape = [1, out_h, out_w, c];
        let input = cycle_i8(&data, in_h * in_w * c);

        let run = |fast: bool, is_max: bool| -> Vec<i8> {
            let mut output = vec![0i8; out_h * out_w * c];
            let args = Pool2DArgs {
                input: &input,
                input_shape,
                output: &mut output,
                output_shape,
                filter: (f_h, f_w),
                stride: (stride_h, stride_w),
                pad: (pad_h, pad_w),
            };
            match (fast, is_max) {
                (true, true) => kernels_fast::max_pool2d(args),
                (false, true) => kernels::max_pool2d(args),
                (true, false) => kernels_fast::average_pool2d(args),
                (false, false) => kernels::average_pool2d(args),
            }
            output
        };
        prop_assert_eq!(run(true, false), run(false, false), "average_pool2d diverged");
        prop_assert_eq!(run(true, true), run(false, true), "max_pool2d diverged");
    }

    /// softmax: exp-memoized fast path == reference, bit for bit (same
    /// float operations in the same order per element).
    #[test]
    fn prop_softmax_fast_matches_reference(
        len in 1usize..80,
        scale_ppm in 1u32..50000,
        zp in -128i32..=127,
        data in proptest::collection::vec(-128i8..=127i8, 1..48),
    ) {
        let input = cycle_i8(&data, len);
        let scale = scale_ppm as f32 * 1e-4;
        let mut want = vec![0i8; len];
        kernels::softmax(&input, scale, zp, &mut want);
        let mut got = vec![0i8; len];
        kernels_fast::softmax(&input, scale, zp, &mut got);
        prop_assert_eq!(got, want);
    }
}

mod interpreter_seam {
    use omg_nn::model::{Activation, Model, Op, Padding};
    use omg_nn::quantize::QuantParams;
    use omg_nn::tensor::DType;
    use omg_nn::{Interpreter, KernelSet};
    use proptest::prelude::*;

    /// A model exercising every step kind: conv (SAME padding, strided),
    /// depthwise conv, max pool, average pool, fully connected, softmax.
    fn all_ops_model() -> Model {
        let qp = |scale: f32, zp: i32| QuantParams {
            scale,
            zero_point: zp,
        };
        let mut b = Model::builder();
        let input = b.add_activation(
            "in",
            vec![1, 8, 8, 1],
            DType::I8,
            Some(qp(1.0 / 255.0, -128)),
        );
        let cw = b.add_weight_i8(
            "conv/w",
            vec![4, 3, 3, 1],
            (0..36).map(|i| (i % 9) as i8 - 4).collect(),
            QuantParams::symmetric(0.05),
        );
        let cb = b.add_weight_i32("conv/b", vec![4], vec![5, -5, 9, 0]);
        let conv = b.add_activation("conv", vec![1, 4, 4, 4], DType::I8, Some(qp(0.1, 3)));
        b.add_op(Op::Conv2D {
            input,
            filter: cw,
            bias: cb,
            output: conv,
            stride_h: 2,
            stride_w: 2,
            padding: Padding::Same,
            activation: Activation::Relu,
        });
        let dw = b.add_weight_i8(
            "dw/w",
            vec![1, 3, 3, 4],
            (0..36).map(|i| (i % 7) as i8 - 3).collect(),
            QuantParams::symmetric(0.04),
        );
        let db = b.add_weight_i32("dw/b", vec![4], vec![1, 2, -3, 4]);
        let dw_out = b.add_activation("dw", vec![1, 4, 4, 4], DType::I8, Some(qp(0.12, -2)));
        b.add_op(Op::DepthwiseConv2D {
            input: conv,
            filter: dw,
            bias: db,
            output: dw_out,
            stride_h: 1,
            stride_w: 1,
            depth_multiplier: 1,
            padding: Padding::Same,
            activation: Activation::None,
        });
        let mp = b.add_activation("maxpool", vec![1, 2, 2, 4], DType::I8, Some(qp(0.12, -2)));
        b.add_op(Op::MaxPool2D {
            input: dw_out,
            output: mp,
            filter_h: 2,
            filter_w: 2,
            stride_h: 2,
            stride_w: 2,
            padding: Padding::Valid,
        });
        let ap = b.add_activation("avgpool", vec![1, 1, 1, 4], DType::I8, Some(qp(0.12, -2)));
        b.add_op(Op::AveragePool2D {
            input: mp,
            output: ap,
            filter_h: 2,
            filter_w: 2,
            stride_h: 2,
            stride_w: 2,
            padding: Padding::Valid,
        });
        let fw = b.add_weight_i8(
            "fc/w",
            vec![6, 4],
            (0..24).map(|i| (i % 5) as i8 - 2).collect(),
            QuantParams::symmetric(0.02),
        );
        let fb = b.add_weight_i32("fc/b", vec![6], vec![0, 2, -2, 4, -4, 6]);
        let logits = b.add_activation("logits", vec![1, 6], DType::I8, Some(qp(0.25, 0)));
        b.add_op(Op::FullyConnected {
            input: ap,
            filter: fw,
            bias: fb,
            output: logits,
            activation: Activation::None,
        });
        let probs = b.add_activation("probs", vec![1, 6], DType::I8, Some(qp(1.0 / 256.0, -128)));
        b.add_op(Op::Softmax {
            input: logits,
            output: probs,
        });
        b.set_input(input);
        b.set_output(probs);
        b.build().unwrap()
    }

    proptest! {
        /// The full interpreter path — arena-planned scratch, split
        /// borrows, every fast kernel — is bit-identical to the reference
        /// interpreter on the same model and inputs, under every dispatch
        /// tier (`Simd` resolves to the detected vtable, `Portable` pins
        /// the lanes fallback).
        #[test]
        fn prop_interpreters_agree_on_every_step_kind(
            data in proptest::collection::vec(-128i8..=127i8, 1..64),
        ) {
            let input: Vec<i8> = (0..64).map(|i| data[i % data.len()]).collect();
            let mut reference =
                Interpreter::with_kernels(all_ops_model(), KernelSet::Reference).unwrap();
            reference.invoke(&input).unwrap();
            let want = reference.output_quantized().unwrap().to_vec();
            for tier in [KernelSet::Simd, KernelSet::Portable] {
                let mut fast = Interpreter::with_kernels(all_ops_model(), tier).unwrap();
                fast.invoke(&input).unwrap();
                prop_assert_eq!(
                    fast.output_quantized().unwrap(),
                    &want[..],
                    "interpreter diverged under {:?}",
                    tier
                );
            }
        }
    }

    /// The fast interpreter plans conv scratch into its arena; the
    /// reference one does not pay for it.
    #[test]
    fn fast_interpreter_plans_scratch_reference_does_not() {
        let fast = Interpreter::with_kernels(all_ops_model(), KernelSet::Simd).unwrap();
        let portable = Interpreter::with_kernels(all_ops_model(), KernelSet::Portable).unwrap();
        let reference = Interpreter::with_kernels(all_ops_model(), KernelSet::Reference).unwrap();
        assert!(fast.arena_size() > reference.arena_size());
        assert_eq!(fast.arena_size(), portable.arena_size());
    }
}
