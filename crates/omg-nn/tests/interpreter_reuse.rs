//! Interpreter-reuse properties of the zero-copy engine: a warm
//! interpreter serving many queries must behave exactly like a fleet of
//! fresh ones, and no activation residue may leak from one query into the
//! next (the clear-between-queries security property of warm sessions).

use omg_nn::model::{Activation, Model, Op, Padding};
use omg_nn::quantize::QuantParams;
use omg_nn::tensor::DType;
use omg_nn::Interpreter;
use proptest::prelude::*;

fn qp(scale: f32, zp: i32) -> QuantParams {
    QuantParams {
        scale,
        zero_point: zp,
    }
}

/// Conv → fc pipeline large enough for the planner to overlap tensors.
fn model() -> Model {
    let mut b = Model::builder();
    let input = b.add_activation(
        "in",
        vec![1, 6, 6, 1],
        DType::I8,
        Some(qp(1.0 / 255.0, -128)),
    );
    let cw = b.add_weight_i8(
        "conv/w",
        vec![2, 3, 3, 1],
        (0..18).map(|i| (i % 5) as i8 - 2).collect(),
        QuantParams::symmetric(0.05),
    );
    let cb = b.add_weight_i32("conv/b", vec![2], vec![1, -1]);
    let conv = b.add_activation("conv", vec![1, 3, 3, 2], DType::I8, Some(qp(0.1, 0)));
    b.add_op(Op::Conv2D {
        input,
        filter: cw,
        bias: cb,
        output: conv,
        stride_h: 2,
        stride_w: 2,
        padding: Padding::Same,
        activation: Activation::Relu,
    });
    let fw = b.add_weight_i8(
        "fc/w",
        vec![3, 18],
        (0..54).map(|i| (i % 7) as i8 - 3).collect(),
        QuantParams::symmetric(0.02),
    );
    let fb = b.add_weight_i32("fc/b", vec![3], vec![0, 2, -2]);
    let out = b.add_activation("logits", vec![1, 3], DType::I8, Some(qp(0.5, 0)));
    b.add_op(Op::FullyConnected {
        input: conv,
        filter: fw,
        bias: fb,
        output: out,
        activation: Activation::None,
    });
    b.set_input(input);
    b.set_output(out);
    b.build().unwrap()
}

proptest! {
    /// A reused interpreter is bit-identical to a fresh instance for every
    /// input, regardless of what ran before it.
    #[test]
    fn reused_interpreter_matches_fresh_instances(
        seed_input in proptest::collection::vec(-128i8..=127, 36..=36),
        probe_input in proptest::collection::vec(-128i8..=127, 36..=36),
    ) {
        let mut warm = Interpreter::new(model()).unwrap();
        // Pollute the warm interpreter's arena with an unrelated query.
        warm.invoke(&seed_input).unwrap();
        warm.invoke(&probe_input).unwrap();
        let warm_out = warm.output_quantized().unwrap().to_vec();

        let mut fresh = Interpreter::new(model()).unwrap();
        fresh.invoke(&probe_input).unwrap();
        prop_assert_eq!(fresh.output_quantized().unwrap(), &warm_out[..]);
    }

    /// Scrubbing between queries removes every trace of the previous
    /// query's activations from the arena.
    #[test]
    fn scrub_leaves_no_arena_residue(
        input in proptest::collection::vec(-128i8..=127, 36..=36),
    ) {
        let mut interp = Interpreter::new(model()).unwrap();
        interp.invoke(&input).unwrap();
        interp.scrub();
        prop_assert!(interp.arena_is_scrubbed());
    }
}

#[test]
fn repeated_invocations_are_stable_over_long_runs() {
    let mut warm = Interpreter::new(model()).unwrap();
    let inputs: Vec<Vec<i8>> = (0..10)
        .map(|k| {
            (0..36)
                .map(|i| ((i * 7 + k * 13) % 256) as u8 as i8)
                .collect()
        })
        .collect();
    let expected: Vec<Vec<i8>> = inputs
        .iter()
        .map(|input| {
            let mut fresh = Interpreter::new(model()).unwrap();
            fresh.invoke(input).unwrap();
            fresh.output_quantized().unwrap().to_vec()
        })
        .collect();
    // Interleave 100 queries over the warm interpreter in a fixed pattern.
    for round in 0..10 {
        for (input, exp) in inputs.iter().zip(&expected) {
            warm.invoke(input).unwrap();
            assert_eq!(
                warm.output_quantized().unwrap(),
                exp.as_slice(),
                "divergence in round {round}"
            );
        }
    }
}

#[test]
fn batch_and_sequential_agree_on_a_shared_interpreter() {
    let inputs: Vec<Vec<i8>> = (0..6)
        .map(|k| {
            (0..36)
                .map(|i| ((i * 11 + k * 29) % 256) as u8 as i8)
                .collect()
        })
        .collect();
    let refs: Vec<&[i8]> = inputs.iter().map(Vec::as_slice).collect();

    let mut a = Interpreter::new(model()).unwrap();
    let batch = a.classify_batch(&refs).unwrap();

    let mut b = Interpreter::new(model()).unwrap();
    let sequential: Vec<(usize, f32)> = inputs
        .iter()
        .map(|input| b.classify(input).unwrap())
        .collect();
    assert_eq!(batch, sequential);
}
