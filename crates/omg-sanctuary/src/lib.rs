//! SANCTUARY-style user-space enclaves on the simulated TrustZone platform.
//!
//! SANCTUARY (Brasser et al., NDSS 2019 — reference \[11\] of the OMG paper)
//! builds enclaves out of stock TrustZone hardware by binding a DRAM region
//! to a temporarily dedicated CPU core through the TZASC. This crate
//! reproduces the architecture on top of [`omg_hal`]:
//!
//! * [`enclave`] — the SA life cycle (setup → boot → execution → teardown,
//!   plus the park/resume optimization of the OMG operation phase),
//! * [`measurement`] — SHA-256 measurement of the initial enclave memory,
//! * [`identity`] — the platform-certificate key hierarchy,
//! * [`attest`] — signed attestation reports and their verification.
//!
//! # Examples
//!
//! ```
//! use omg_crypto::rng::ChaChaRng;
//! use omg_hal::Platform;
//! use omg_sanctuary::attest::AttestationReport;
//! use omg_sanctuary::enclave::{EnclaveConfig, SanctuaryEnclave};
//! use omg_sanctuary::identity::DevicePki;
//! use rand::SeedableRng;
//!
//! let mut platform = Platform::hikey960();
//! let mut rng = ChaChaRng::seed_from_u64(1);
//! let pki = DevicePki::new(&mut rng)?;
//!
//! // Setup + boot an enclave.
//! let config = EnclaveConfig::new("demo", b"my trusted app".to_vec());
//! let mut enclave = SanctuaryEnclave::setup(&mut platform, config)?;
//! enclave.boot(&mut platform, &pki, &mut rng)?;
//!
//! // A remote verifier checks the attestation report.
//! let report = AttestationReport::generate(enclave.identity()?, b"challenge")?;
//! let expected = *enclave.measurement()?;
//! let pk = report.verify(pki.platform_ca(), &expected, b"challenge")?;
//! assert_eq!(&pk, enclave.identity()?.public_key());
//!
//! enclave.teardown(&mut platform)?;
//! # Ok::<(), omg_sanctuary::SanctuaryError>(())
//! ```

#![warn(missing_docs)]

pub mod attest;
pub mod enclave;
mod error;
pub mod identity;
pub mod measurement;

pub use enclave::{EnclaveConfig, EnclaveState, SanctuaryEnclave};
pub use error::{Result, SanctuaryError};
