//! Attestation reports.
//!
//! An attestation report proves to a remote verifier (the user U in step ①,
//! the vendor V in step ② of the paper's Fig. 2) that a specific enclave —
//! identified by its measurement — is running on a genuine device, and
//! conveys the enclave's public key `PK` for subsequent key derivation.

use omg_crypto::rsa::RsaPublicKey;

use crate::error::{Result, SanctuaryError};
use crate::identity::{EnclaveCert, EnclaveIdentity};
use crate::measurement::Measurement;

/// A signed attestation report.
///
/// Layout mirrors SGX-style reports: the quoted body (measurement, public
/// key, verifier challenge) is signed by the enclave key, whose certificate
/// chains to the platform CA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttestationReport {
    measurement: Measurement,
    enclave_public_key: Vec<u8>,
    challenge: Vec<u8>,
    signature: Vec<u8>,
    cert: EnclaveCert,
}

impl AttestationReport {
    fn signed_payload(measurement: &Measurement, pk: &[u8], challenge: &[u8]) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + pk.len() + challenge.len());
        payload.extend_from_slice(b"SANCTUARY-REPORT-v1");
        payload.extend_from_slice(measurement.as_bytes());
        payload.extend_from_slice(&(pk.len() as u32).to_be_bytes());
        payload.extend_from_slice(pk);
        payload.extend_from_slice(&(challenge.len() as u32).to_be_bytes());
        payload.extend_from_slice(challenge);
        payload
    }

    /// Produces a report for `identity` answering a verifier `challenge`.
    ///
    /// # Errors
    ///
    /// Propagates signing failures.
    pub fn generate(identity: &EnclaveIdentity, challenge: &[u8]) -> Result<Self> {
        let measurement = *identity.cert().measurement();
        let pk = identity.public_key().to_bytes();
        let payload = Self::signed_payload(&measurement, &pk, challenge);
        let signature = identity.keypair().sign(&payload)?;
        Ok(AttestationReport {
            measurement,
            enclave_public_key: pk,
            challenge: challenge.to_vec(),
            signature,
            cert: identity.cert().clone(),
        })
    }

    /// The measurement this report attests to.
    pub fn measurement(&self) -> &Measurement {
        &self.measurement
    }

    /// The challenge echoed by the enclave.
    pub fn challenge(&self) -> &[u8] {
        &self.challenge
    }

    /// Verifies the report and returns the attested enclave public key `PK`.
    ///
    /// Checks, in order: the certificate chain to `platform_ca`, the report
    /// signature under the certified key, challenge freshness, and that the
    /// measurement equals `expected` (both the report's and the certified
    /// one).
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::AttestationFailed`] naming the failed check.
    pub fn verify(
        &self,
        platform_ca: &RsaPublicKey,
        expected: &Measurement,
        challenge: &[u8],
    ) -> Result<RsaPublicKey> {
        let certified_pk = self.cert.verify(platform_ca)?;
        let payload =
            Self::signed_payload(&self.measurement, &self.enclave_public_key, &self.challenge);
        certified_pk
            .verify(&payload, &self.signature)
            .map_err(|_| SanctuaryError::AttestationFailed("report signature invalid"))?;
        let report_pk = RsaPublicKey::from_bytes(&self.enclave_public_key)
            .map_err(|_| SanctuaryError::AttestationFailed("malformed enclave key"))?;
        if report_pk != certified_pk {
            return Err(SanctuaryError::AttestationFailed(
                "report key does not match certificate",
            ));
        }
        if self.challenge != challenge {
            return Err(SanctuaryError::AttestationFailed("stale challenge"));
        }
        if !self.measurement.ct_matches(expected) {
            return Err(SanctuaryError::AttestationFailed("measurement mismatch"));
        }
        if !self.cert.measurement().ct_matches(expected) {
            return Err(SanctuaryError::AttestationFailed(
                "certificate measurement mismatch",
            ));
        }
        Ok(report_pk)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identity::DevicePki;
    use omg_crypto::rng::ChaChaRng;

    fn setup() -> (DevicePki, EnclaveIdentity, Measurement) {
        let mut rng = ChaChaRng::seed_from_u64(21);
        let pki = DevicePki::new(&mut rng).unwrap();
        let m = Measurement::of(b"omg enclave image");
        let ident = pki.issue_enclave_identity(&mut rng, m).unwrap();
        (pki, ident, m)
    }

    #[test]
    fn report_verifies_end_to_end() {
        let (pki, ident, m) = setup();
        let report = AttestationReport::generate(&ident, b"nonce-123").unwrap();
        let pk = report.verify(pki.platform_ca(), &m, b"nonce-123").unwrap();
        assert_eq!(&pk, ident.public_key());
        assert_eq!(report.measurement(), &m);
        assert_eq!(report.challenge(), b"nonce-123");
    }

    #[test]
    fn stale_challenge_rejected() {
        let (pki, ident, m) = setup();
        let report = AttestationReport::generate(&ident, b"old").unwrap();
        assert!(matches!(
            report.verify(pki.platform_ca(), &m, b"fresh"),
            Err(SanctuaryError::AttestationFailed("stale challenge"))
        ));
    }

    #[test]
    fn wrong_measurement_rejected() {
        let (pki, ident, _) = setup();
        let report = AttestationReport::generate(&ident, b"n").unwrap();
        let wrong = Measurement::of(b"tampered image");
        assert!(matches!(
            report.verify(pki.platform_ca(), &wrong, b"n"),
            Err(SanctuaryError::AttestationFailed("measurement mismatch"))
        ));
    }

    #[test]
    fn forged_signature_rejected() {
        let (pki, ident, m) = setup();
        let mut report = AttestationReport::generate(&ident, b"n").unwrap();
        report.signature[5] ^= 0x10;
        assert!(matches!(
            report.verify(pki.platform_ca(), &m, b"n"),
            Err(SanctuaryError::AttestationFailed(
                "report signature invalid"
            ))
        ));
    }

    #[test]
    fn report_with_substituted_key_rejected() {
        // An attacker replaces the enclave public key in the report with
        // their own, hoping the vendor derives K_U for a key they control.
        let (pki, ident, m) = setup();
        let mut rng = ChaChaRng::seed_from_u64(77);
        let attacker = omg_crypto::rsa::RsaPrivateKey::generate(&mut rng, 1024).unwrap();
        let mut report = AttestationReport::generate(&ident, b"n").unwrap();
        report.enclave_public_key = attacker.public_key().to_bytes();
        assert!(report.verify(pki.platform_ca(), &m, b"n").is_err());
    }

    #[test]
    fn report_from_different_device_rejected() {
        let (_, ident, m) = setup();
        let mut rng = ChaChaRng::seed_from_u64(88);
        let other_device = DevicePki::new(&mut rng).unwrap();
        let report = AttestationReport::generate(&ident, b"n").unwrap();
        assert!(report.verify(other_device.platform_ca(), &m, b"n").is_err());
    }
}
