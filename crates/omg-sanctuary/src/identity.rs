//! The device key hierarchy.
//!
//! SANCTUARY assigns each enclave a unique asymmetric key pair "derived from
//! the platform certificate issued by the device vendor, effectively creating
//! a certificate hierarchy similar to SSL certificates" (paper §V, phase I).
//!
//! The simulation models this as a two-level PKI: a per-device platform key
//! (whose public half is known to users and vendors through the device
//! manufacturer) certifies freshly generated per-enclave RSA key pairs,
//! binding each enclave key to the enclave's measurement.

use rand::Rng;

use omg_crypto::rsa::{RsaPrivateKey, RsaPublicKey};

use crate::error::{Result, SanctuaryError};
use crate::measurement::Measurement;

/// Default RSA modulus size for device and enclave keys.
///
/// 1024-bit keys keep the simulation fast; pass a different size to
/// [`DevicePki::with_key_bits`] for production-strength 2048-bit keys.
pub const DEFAULT_KEY_BITS: usize = 1024;

/// A certificate binding an enclave public key to a measurement, signed by
/// the platform key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnclaveCert {
    /// Serialized enclave public key (see [`RsaPublicKey::to_bytes`]).
    public_key: Vec<u8>,
    /// The measurement of the enclave this key was issued to.
    measurement: Measurement,
    /// Platform-key signature over `public_key || measurement`.
    signature: Vec<u8>,
}

impl EnclaveCert {
    fn signed_payload(public_key: &[u8], measurement: &Measurement) -> Vec<u8> {
        let mut payload = Vec::with_capacity(public_key.len() + 32 + 16);
        payload.extend_from_slice(b"SANCTUARY-CERT-v1");
        payload.extend_from_slice(public_key);
        payload.extend_from_slice(measurement.as_bytes());
        payload
    }

    /// The enclave public key this certificate endorses.
    ///
    /// # Errors
    ///
    /// Propagates parse errors for corrupted certificates.
    pub fn public_key(&self) -> Result<RsaPublicKey> {
        Ok(RsaPublicKey::from_bytes(&self.public_key)?)
    }

    /// The measurement bound into this certificate.
    pub fn measurement(&self) -> &Measurement {
        &self.measurement
    }

    /// Verifies the certificate chain against the platform CA key.
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::AttestationFailed`] if the platform signature does
    /// not verify.
    pub fn verify(&self, platform_ca: &RsaPublicKey) -> Result<RsaPublicKey> {
        let payload = Self::signed_payload(&self.public_key, &self.measurement);
        platform_ca
            .verify(&payload, &self.signature)
            .map_err(|_| SanctuaryError::AttestationFailed("platform certificate invalid"))?;
        self.public_key()
    }
}

/// The key material SANCTUARY provisions into a freshly booted enclave.
#[derive(Debug, Clone)]
pub struct EnclaveIdentity {
    keypair: RsaPrivateKey,
    cert: EnclaveCert,
}

impl EnclaveIdentity {
    /// The enclave's signing key (never leaves the enclave).
    pub fn keypair(&self) -> &RsaPrivateKey {
        &self.keypair
    }

    /// The enclave's public key.
    pub fn public_key(&self) -> &RsaPublicKey {
        self.keypair.public_key()
    }

    /// The platform-issued certificate for this identity.
    pub fn cert(&self) -> &EnclaveCert {
        &self.cert
    }
}

/// The per-device platform PKI (root of the certificate hierarchy).
#[derive(Debug)]
pub struct DevicePki {
    platform_key: RsaPrivateKey,
    key_bits: usize,
}

impl DevicePki {
    /// Generates a device PKI with [`DEFAULT_KEY_BITS`] keys.
    ///
    /// Key generation is memoized on the generator's stream
    /// ([`RsaPrivateKey::generate_memoized`]): simulations that provision
    /// many identically seeded devices pay the prime search once and get
    /// bit-identical keys and RNG evolution on every subsequent call.
    ///
    /// Memoization retains key material in bounded host-process memory for
    /// the process lifetime. That is harness state outside the simulated
    /// threat model — the adversary of paper §IV lives in the simulated
    /// normal world, which can never read it, exactly as the simulated
    /// `Vendor` holds the plaintext model in host memory. The scrub
    /// guarantees (`teardown_leaves_no_secrets_behind` etc.) are about the
    /// simulated platform's memory and are unaffected.
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures.
    pub fn new<R: Rng + Clone + Send + Sync + 'static>(rng: &mut R) -> Result<Self> {
        Self::with_key_bits(rng, DEFAULT_KEY_BITS)
    }

    /// Generates a device PKI with the given RSA modulus size.
    ///
    /// # Errors
    ///
    /// Propagates key-generation failures (e.g. sizes below 512 bits).
    pub fn with_key_bits<R: Rng + Clone + Send + Sync + 'static>(
        rng: &mut R,
        key_bits: usize,
    ) -> Result<Self> {
        let platform_key = RsaPrivateKey::generate_memoized(rng, key_bits)?;
        Ok(DevicePki {
            platform_key,
            key_bits,
        })
    }

    /// The platform CA public key (distributed with the device, known to
    /// users and vendors).
    pub fn platform_ca(&self) -> &RsaPublicKey {
        self.platform_key.public_key()
    }

    /// Issues a fresh enclave identity bound to `measurement`.
    ///
    /// # Errors
    ///
    /// Propagates key-generation and signing failures.
    pub fn issue_enclave_identity<R: Rng + Clone + Send + Sync + 'static>(
        &self,
        rng: &mut R,
        measurement: Measurement,
    ) -> Result<EnclaveIdentity> {
        let keypair = RsaPrivateKey::generate_memoized(rng, self.key_bits)?;
        let public_key = keypair.public_key().to_bytes();
        let payload = EnclaveCert::signed_payload(&public_key, &measurement);
        let signature = self.platform_key.sign(&payload)?;
        Ok(EnclaveIdentity {
            keypair,
            cert: EnclaveCert {
                public_key,
                measurement,
                signature,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_crypto::rng::ChaChaRng;

    fn pki_and_identity() -> (DevicePki, EnclaveIdentity) {
        let mut rng = ChaChaRng::seed_from_u64(11);
        let pki = DevicePki::new(&mut rng).unwrap();
        let ident = pki
            .issue_enclave_identity(&mut rng, Measurement::of(b"enclave"))
            .unwrap();
        (pki, ident)
    }

    #[test]
    fn issued_cert_verifies_against_platform_ca() {
        let (pki, ident) = pki_and_identity();
        let pk = ident.cert().verify(pki.platform_ca()).unwrap();
        assert_eq!(&pk, ident.public_key());
        assert_eq!(ident.cert().measurement(), &Measurement::of(b"enclave"));
    }

    #[test]
    fn cert_from_wrong_ca_fails() {
        let (_, ident) = pki_and_identity();
        let mut rng = ChaChaRng::seed_from_u64(99);
        let other_pki = DevicePki::new(&mut rng).unwrap();
        assert!(matches!(
            ident.cert().verify(other_pki.platform_ca()),
            Err(SanctuaryError::AttestationFailed(_))
        ));
    }

    #[test]
    fn tampered_cert_fails() {
        let (pki, ident) = pki_and_identity();
        let mut cert = ident.cert().clone();
        // Swap the bound measurement: signature no longer matches.
        cert.measurement = Measurement::of(b"tampered enclave");
        assert!(cert.verify(pki.platform_ca()).is_err());
    }

    #[test]
    fn distinct_enclaves_get_distinct_keys() {
        let mut rng = ChaChaRng::seed_from_u64(12);
        let pki = DevicePki::new(&mut rng).unwrap();
        let a = pki
            .issue_enclave_identity(&mut rng, Measurement::of(b"a"))
            .unwrap();
        let b = pki
            .issue_enclave_identity(&mut rng, Measurement::of(b"b"))
            .unwrap();
        assert_ne!(a.public_key(), b.public_key());
    }
}
