//! The SANCTUARY App (SA) life cycle.
//!
//! Paper §III-B describes four steps, all reproduced here against the
//! simulated platform:
//!
//! 1. **Setup** — memory for the SA instance is prepared by loading the
//!    SANCTUARY library (SL) and the SA; the TZASC is configured to isolate
//!    the region; the least busy CPU core is shut down.
//! 2. **Boot** — the memory is attested and the core is booted with the SL.
//! 3. **Execution** — the SA runs as a normal-world user process, using
//!    shared regions for OS services and secure-world peripheral proxying.
//! 4. **Teardown** — the core is shut down, L1 is invalidated, the SA memory
//!    is cleaned and unlocked, and the core is handed back to the OS.
//!
//! Additionally, §V's operation phase allows **parking**: between queries
//! the core returns to the commodity OS while the memory stays locked, and a
//! new core is bound on resume.

use std::time::Duration;

use rand::Rng;

use omg_hal::clock::HwEvent;
use omg_hal::cpu::{CoreId, World};
use omg_hal::memory::{Agent, Protection, RegionId};
use omg_hal::Platform;

use crate::error::{Result, SanctuaryError};
use crate::identity::{DevicePki, EnclaveIdentity};
use crate::measurement::Measurement;

/// Produces the (simulated) SANCTUARY Library binary image — the Zircon
/// microkernel based runtime loaded below every SA (paper §III-B).
///
/// The content is deterministic so that enclave measurements are stable
/// across runs.
pub fn sanctuary_library_image() -> Vec<u8> {
    const SL_SIZE: usize = 4096;
    let banner = b"SANCTUARY-LIBRARY zircon-microkernel v1.0 (simulated) ";
    let mut image = Vec::with_capacity(SL_SIZE);
    while image.len() < SL_SIZE {
        let take = banner.len().min(SL_SIZE - image.len());
        image.extend_from_slice(&banner[..take]);
    }
    image
}

/// Configuration for creating an enclave.
#[derive(Debug, Clone)]
pub struct EnclaveConfig {
    /// Name used for the memory regions (diagnostics / Fig. 1 rendering).
    pub name: String,
    /// The SANCTUARY App binary image (measured together with the SL).
    pub code: Vec<u8>,
    /// Total enclave memory (SL + SA code + heap), in bytes.
    pub memory_size: u64,
    /// Shared mailbox size, in bytes.
    pub shared_size: u64,
}

impl EnclaveConfig {
    /// Convenience constructor with 1 MiB enclave memory and a 64 KiB
    /// mailbox.
    pub fn new(name: &str, code: Vec<u8>) -> Self {
        EnclaveConfig {
            name: name.to_owned(),
            code,
            memory_size: 1 << 20,
            shared_size: 64 << 10,
        }
    }
}

/// Life-cycle state of a [`SanctuaryEnclave`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveState {
    /// Memory loaded and locked; core parked; not yet measured or booted.
    Loaded,
    /// Measured, keyed, and executing on a dedicated core.
    Running,
    /// Core returned to the OS between queries; memory still locked.
    Parked,
    /// Dead: memory scrubbed and released, core handed back.
    TornDown,
}

impl EnclaveState {
    fn name(self) -> &'static str {
        match self {
            EnclaveState::Loaded => "loaded",
            EnclaveState::Running => "running",
            EnclaveState::Parked => "parked",
            EnclaveState::TornDown => "torn down",
        }
    }
}

/// A SANCTUARY user-space enclave bound to a simulated platform.
///
/// The enclave does not own the [`Platform`]; every operation borrows it,
/// mirroring how real enclaves are scheduled onto shared hardware.
#[derive(Debug)]
pub struct SanctuaryEnclave {
    name: String,
    state: EnclaveState,
    core: CoreId,
    region: RegionId,
    shared: RegionId,
    /// Bytes of SL + SA image at the start of the region.
    image_len: usize,
    memory_size: u64,
    measurement: Option<Measurement>,
    identity: Option<EnclaveIdentity>,
}

impl SanctuaryEnclave {
    /// **Setup** (life-cycle step 1): shuts down the least busy core, loads
    /// SL + SA into a fresh region, and locks the region to that core.
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::CodeTooLarge`] if the image exceeds
    /// `config.memory_size`; otherwise propagates platform errors
    /// (e.g. [`omg_hal::HalError::NoEligibleCore`]).
    pub fn setup(platform: &mut Platform, config: EnclaveConfig) -> Result<Self> {
        let sl = sanctuary_library_image();
        let image_len = sl.len() + config.code.len();
        if image_len as u64 > config.memory_size {
            return Err(SanctuaryError::CodeTooLarge {
                code: image_len,
                memory: config.memory_size as usize,
            });
        }

        // Pick and park the least busy core.
        let core = platform.least_busy_online_core()?;
        platform.shutdown_core(core)?;

        // The commodity OS loads the image while the region is still open...
        let loader = platform
            .cores()
            .iter()
            .find(|c| c.state() == omg_hal::cpu::CoreState::Online)
            .map(|c| c.id())
            .ok_or(omg_hal::HalError::NoEligibleCore)?;
        let region =
            platform.allocate_region(&config.name, config.memory_size, Protection::Open)?;
        platform.write_at(Agent::NormalWorld { core: loader }, region, 0, &sl)?;
        platform.write_at(
            Agent::NormalWorld { core: loader },
            region,
            sl.len() as u64,
            &config.code,
        )?;

        // ...then the TZASC binds it exclusively to the parked core.
        platform.set_protection(region, Protection::CoreLocked(core))?;

        // Mailbox shared with the OS and the secure world.
        let shared = platform.allocate_region(
            &format!("{}-shared", config.name),
            config.shared_size,
            Protection::Shared(core),
        )?;

        Ok(SanctuaryEnclave {
            name: config.name,
            state: EnclaveState::Loaded,
            core,
            region,
            shared,
            image_len,
            memory_size: config.memory_size,
            measurement: None,
            identity: None,
        })
    }

    /// **Boot** (life-cycle step 2): the firmware measures the locked
    /// memory, SANCTUARY issues the enclave key pair bound to that
    /// measurement, and the core boots into the SL.
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::BadState`] unless the enclave is freshly loaded;
    /// propagates key-generation failures.
    pub fn boot<R: Rng + Clone + Send + Sync + 'static>(
        &mut self,
        platform: &mut Platform,
        pki: &DevicePki,
        rng: &mut R,
    ) -> Result<()> {
        self.expect_state(EnclaveState::Loaded, "boot")?;
        let clock = platform.clock();

        // Measurement covers the *initial memory content* (paper §V).
        let image = platform.read_region_trusted(self.region)?;
        let (measurement, _) = clock.measure(|| Measurement::of(&image));

        // Key pair derived from the platform certificate hierarchy.
        let (identity, _) = {
            let pki_ref = &pki;
            clock.measure(move || pki_ref.issue_enclave_identity(rng, measurement))
        };
        let identity = identity?;

        platform.boot_core_sanctuary(self.core)?;
        self.measurement = Some(measurement);
        self.identity = Some(identity);
        self.state = EnclaveState::Running;
        Ok(())
    }

    fn expect_state(&self, want: EnclaveState, operation: &'static str) -> Result<()> {
        if self.state != want {
            return Err(SanctuaryError::BadState {
                operation,
                state: self.state.name(),
            });
        }
        Ok(())
    }

    /// The enclave's current life-cycle state.
    pub fn state(&self) -> EnclaveState {
        self.state
    }

    /// The core currently (or last) bound to this enclave.
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// Region holding the enclave image + heap.
    pub fn region(&self) -> RegionId {
        self.region
    }

    /// The shared mailbox region.
    pub fn shared_region(&self) -> RegionId {
        self.shared
    }

    /// The enclave's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The boot-time measurement.
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::BadState`] before boot.
    pub fn measurement(&self) -> Result<&Measurement> {
        self.measurement.as_ref().ok_or(SanctuaryError::BadState {
            operation: "read measurement",
            state: self.state.name(),
        })
    }

    /// The enclave identity (key pair + certificate).
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::BadState`] before boot.
    pub fn identity(&self) -> Result<&EnclaveIdentity> {
        self.identity.as_ref().ok_or(SanctuaryError::BadState {
            operation: "read identity",
            state: self.state.name(),
        })
    }

    /// Offset of the first heap byte (after the SL + SA image).
    pub fn heap_base(&self) -> u64 {
        self.image_len as u64
    }

    /// Heap capacity in bytes.
    pub fn heap_size(&self) -> u64 {
        self.memory_size - self.image_len as u64
    }

    fn check_heap_bounds(&self, offset: u64, len: usize) -> Result<()> {
        if offset + len as u64 > self.heap_size() {
            return Err(SanctuaryError::OutOfBounds { offset, len });
        }
        Ok(())
    }

    /// Writes into the enclave heap as the SA.
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::BadState`] unless running;
    /// [`SanctuaryError::OutOfBounds`] beyond the heap.
    pub fn heap_write(&self, platform: &mut Platform, offset: u64, data: &[u8]) -> Result<()> {
        self.expect_state(EnclaveState::Running, "write enclave heap")?;
        self.check_heap_bounds(offset, data.len())?;
        platform.write_at(
            Agent::SanctuaryApp { core: self.core },
            self.region,
            self.heap_base() + offset,
            data,
        )?;
        Ok(())
    }

    /// Reads from the enclave heap as the SA.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::heap_write`].
    pub fn heap_read(&self, platform: &mut Platform, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.expect_state(EnclaveState::Running, "read enclave heap")?;
        self.check_heap_bounds(offset, buf.len())?;
        platform.read_at(
            Agent::SanctuaryApp { core: self.core },
            self.region,
            self.heap_base() + offset,
            buf,
        )?;
        Ok(())
    }

    /// Writes into the shared mailbox as the SA.
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::BadState`] unless running; platform faults otherwise.
    pub fn shared_write(&self, platform: &mut Platform, offset: u64, data: &[u8]) -> Result<()> {
        self.expect_state(EnclaveState::Running, "write shared mailbox")?;
        platform.write_at(
            Agent::SanctuaryApp { core: self.core },
            self.shared,
            offset,
            data,
        )?;
        Ok(())
    }

    /// Reads from the shared mailbox as the SA.
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::BadState`] unless running; platform faults otherwise.
    pub fn shared_read(&self, platform: &mut Platform, offset: u64, buf: &mut [u8]) -> Result<()> {
        self.expect_state(EnclaveState::Running, "read shared mailbox")?;
        platform.read_at(
            Agent::SanctuaryApp { core: self.core },
            self.shared,
            offset,
            buf,
        )?;
        Ok(())
    }

    /// Runs `f` as enclave compute on the dedicated core, charging measured
    /// time (with the L2-exclusion penalty when enabled).
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::BadState`] unless running.
    pub fn run_compute<T>(
        &self,
        platform: &mut Platform,
        f: impl FnOnce() -> T,
    ) -> Result<(T, Duration)> {
        self.expect_state(EnclaveState::Running, "run enclave compute")?;
        Ok(platform.run_enclave_compute(self.core, f)?)
    }

    /// Reads up to `max_samples` microphone samples through the secure
    /// world (paper Fig. 2 step ⑦).
    ///
    /// The SA cannot touch the device: it traps to the secure world, which
    /// reads the microphone and deposits the samples in the shared region;
    /// the SA then copies them in. Two world switches are charged — the
    /// "negligible overhead" quantified in §VI.
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::BadState`] unless running; peripheral errors from
    /// the platform (e.g. the microphone not being assigned to the secure
    /// world yet, or running dry).
    pub fn secure_mic_read(&self, platform: &mut Platform, max_samples: usize) -> Result<Vec<i16>> {
        self.expect_state(EnclaveState::Running, "read microphone")?;
        let shared_capacity = (platform.region_size(self.shared)? as usize) / 2;
        let n = max_samples.min(shared_capacity);

        // SMC into the secure world.
        platform.world_switch(self.core, World::Secure)?;
        let secure = Agent::SecureWorld { core: self.core };
        let result = platform.read_microphone(secure, n);
        let samples = match result {
            Ok(s) => s,
            Err(e) => {
                // Fault path still returns to the SA.
                platform.world_switch(self.core, World::Normal)?;
                return Err(e.into());
            }
        };
        let mut bytes = Vec::with_capacity(samples.len() * 2);
        for s in &samples {
            bytes.extend_from_slice(&s.to_le_bytes());
        }
        platform.write_at(secure, self.shared, 0, &bytes)?;
        platform.clock().charge(HwEvent::CopyPerByte, bytes.len());

        // Return to the SA and copy out of the mailbox.
        platform.world_switch(self.core, World::Normal)?;
        let mut out_bytes = vec![0u8; bytes.len()];
        platform.read_at(
            Agent::SanctuaryApp { core: self.core },
            self.shared,
            0,
            &mut out_bytes,
        )?;
        let out = out_bytes
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect();
        Ok(out)
    }

    /// **Park** between queries (paper §V): invalidates L1 and returns the
    /// core to the commodity OS while the memory stays TZASC-locked.
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::BadState`] unless running.
    pub fn park(&mut self, platform: &mut Platform) -> Result<()> {
        self.expect_state(EnclaveState::Running, "park")?;
        platform.invalidate_l1(self.core)?;
        platform.return_core(self.core)?;
        self.state = EnclaveState::Parked;
        Ok(())
    }

    /// Resumes a parked enclave on a freshly allocated core, re-binding the
    /// locked memory to it.
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::BadState`] unless parked; core-allocation errors.
    pub fn resume(&mut self, platform: &mut Platform) -> Result<()> {
        self.expect_state(EnclaveState::Parked, "resume")?;
        let core = platform.least_busy_online_core()?;
        platform.shutdown_core(core)?;
        platform.set_protection(self.region, Protection::CoreLocked(core))?;
        platform.set_protection(self.shared, Protection::Shared(core))?;
        platform.boot_core_sanctuary(core)?;
        self.core = core;
        self.state = EnclaveState::Running;
        Ok(())
    }

    /// **Teardown** (life-cycle step 4): invalidates L1, scrubs and releases
    /// the enclave memory, and hands the core back to the OS.
    ///
    /// # Errors
    ///
    /// [`SanctuaryError::BadState`] if already torn down or never booted.
    pub fn teardown(&mut self, platform: &mut Platform) -> Result<()> {
        match self.state {
            EnclaveState::Running => {
                platform.invalidate_l1(self.core)?;
                platform.return_core(self.core)?;
            }
            EnclaveState::Parked => {}
            other => {
                return Err(SanctuaryError::BadState {
                    operation: "teardown",
                    state: other.name(),
                })
            }
        }
        platform.scrub_region(self.region)?;
        platform.scrub_region(self.shared)?;
        platform.set_protection(self.region, Protection::Open)?;
        platform.set_protection(self.shared, Protection::Open)?;
        platform.release_region(self.region)?;
        platform.release_region(self.shared)?;
        self.state = EnclaveState::TornDown;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omg_crypto::rng::ChaChaRng;
    use omg_hal::periph::PeriphAssignment;
    use omg_hal::HalError;

    fn booted_enclave(platform: &mut Platform) -> (SanctuaryEnclave, DevicePki) {
        let mut rng = ChaChaRng::seed_from_u64(31);
        let pki = DevicePki::new(&mut rng).unwrap();
        let config = EnclaveConfig::new("test-enclave", b"SA code v1".to_vec());
        let mut enclave = SanctuaryEnclave::setup(platform, config).unwrap();
        enclave.boot(platform, &pki, &mut rng).unwrap();
        (enclave, pki)
    }

    #[test]
    fn full_lifecycle() {
        let mut platform = Platform::hikey960();
        let (mut enclave, _) = booted_enclave(&mut platform);
        assert_eq!(enclave.state(), EnclaveState::Running);
        assert!(enclave.measurement().is_ok());
        assert!(enclave.identity().is_ok());

        enclave
            .heap_write(&mut platform, 0, b"working data")
            .unwrap();
        let mut buf = [0u8; 12];
        enclave.heap_read(&mut platform, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"working data");

        enclave.teardown(&mut platform).unwrap();
        assert_eq!(enclave.state(), EnclaveState::TornDown);
        // Core is back with the OS.
        assert_eq!(
            platform.core(enclave.core()).unwrap().state(),
            omg_hal::cpu::CoreState::Online
        );
    }

    #[test]
    fn state_machine_rejects_out_of_order_operations() {
        let mut platform = Platform::hikey960();
        let mut rng = ChaChaRng::seed_from_u64(32);
        let pki = DevicePki::new(&mut rng).unwrap();
        let config = EnclaveConfig::new("e", b"code".to_vec());
        let mut enclave = SanctuaryEnclave::setup(&mut platform, config).unwrap();

        // Not yet booted: no compute, no heap, no measurement.
        assert!(matches!(
            enclave.run_compute(&mut platform, || ()),
            Err(SanctuaryError::BadState { .. })
        ));
        assert!(enclave.heap_write(&mut platform, 0, b"x").is_err());
        assert!(enclave.measurement().is_err());
        assert!(enclave.teardown(&mut platform).is_err());

        enclave.boot(&mut platform, &pki, &mut rng).unwrap();
        // Double boot fails.
        assert!(enclave.boot(&mut platform, &pki, &mut rng).is_err());
        enclave.teardown(&mut platform).unwrap();
        // Everything after teardown fails.
        assert!(enclave.heap_write(&mut platform, 0, b"x").is_err());
        assert!(enclave.teardown(&mut platform).is_err());
    }

    #[test]
    fn code_too_large_rejected() {
        let mut platform = Platform::hikey960();
        let mut config = EnclaveConfig::new("big", vec![0u8; 2048]);
        config.memory_size = 4096; // SL alone is 4096
        assert!(matches!(
            SanctuaryEnclave::setup(&mut platform, config),
            Err(SanctuaryError::CodeTooLarge { .. })
        ));
    }

    #[test]
    fn enclave_memory_isolated_from_normal_and_secure_world() {
        let mut platform = Platform::hikey960();
        let (enclave, _) = booted_enclave(&mut platform);
        enclave
            .heap_write(&mut platform, 0, b"model secret")
            .unwrap();

        let mut buf = [0u8; 12];
        let base_off = enclave.heap_base();
        // Commodity OS: fault.
        assert!(matches!(
            platform.read_at(
                Agent::NormalWorld { core: CoreId(0) },
                enclave.region(),
                base_off,
                &mut buf
            ),
            Err(HalError::AccessFault { .. })
        ));
        // Secure world: fault (two-way isolation).
        assert!(matches!(
            platform.read_at(
                Agent::SecureWorld { core: CoreId(0) },
                enclave.region(),
                base_off,
                &mut buf
            ),
            Err(HalError::AccessFault { .. })
        ));
        // DMA: fault.
        assert!(matches!(
            platform.read_at(
                Agent::Dma { device: "gpu" },
                enclave.region(),
                base_off,
                &mut buf
            ),
            Err(HalError::AccessFault { .. })
        ));
    }

    #[test]
    fn heap_bounds_checked() {
        let mut platform = Platform::hikey960();
        let (enclave, _) = booted_enclave(&mut platform);
        let heap = enclave.heap_size();
        assert!(enclave
            .heap_write(&mut platform, heap - 4, &[0u8; 4])
            .is_ok());
        assert!(matches!(
            enclave.heap_write(&mut platform, heap - 3, &[0u8; 4]),
            Err(SanctuaryError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn measurement_binds_to_code() {
        let mut platform = Platform::hikey960();
        let mut rng = ChaChaRng::seed_from_u64(33);
        let pki = DevicePki::new(&mut rng).unwrap();

        let mut e1 =
            SanctuaryEnclave::setup(&mut platform, EnclaveConfig::new("a", b"code v1".to_vec()))
                .unwrap();
        e1.boot(&mut platform, &pki, &mut rng).unwrap();
        let mut e2 =
            SanctuaryEnclave::setup(&mut platform, EnclaveConfig::new("b", b"code v2".to_vec()))
                .unwrap();
        e2.boot(&mut platform, &pki, &mut rng).unwrap();
        assert_ne!(e1.measurement().unwrap(), e2.measurement().unwrap());

        // Same code in a fresh enclave measures identically.
        e1.teardown(&mut platform).unwrap();
        let mut e3 =
            SanctuaryEnclave::setup(&mut platform, EnclaveConfig::new("c", b"code v1".to_vec()))
                .unwrap();
        e3.boot(&mut platform, &pki, &mut rng).unwrap();
        // Note: e3's region may differ in *size*? No — same config size, so
        // identical initial content.
        assert_eq!(platform.region_size(e3.region()).unwrap(), 1 << 20);
        let m3 = *e3.measurement().unwrap();
        assert_eq!(&m3, {
            let m1 = Measurement::of(&{
                let mut img = sanctuary_library_image();
                img.extend_from_slice(b"code v1");
                img.resize(1 << 20, 0);
                img
            });
            &m1.clone()
        });
    }

    #[test]
    fn tampered_code_changes_measurement() {
        // The attacker controls the OS and modifies the image during load
        // (before the TZASC lock). The measurement then differs from the
        // published one and remote verification will fail.
        let mut platform = Platform::hikey960();
        let mut rng = ChaChaRng::seed_from_u64(34);
        let pki = DevicePki::new(&mut rng).unwrap();

        let genuine_code = b"genuine SA".to_vec();
        let mut tampered_code = genuine_code.clone();
        tampered_code[0] ^= 0x80;

        let mut genuine =
            SanctuaryEnclave::setup(&mut platform, EnclaveConfig::new("g", genuine_code)).unwrap();
        genuine.boot(&mut platform, &pki, &mut rng).unwrap();
        let mut tampered =
            SanctuaryEnclave::setup(&mut platform, EnclaveConfig::new("t", tampered_code)).unwrap();
        tampered.boot(&mut platform, &pki, &mut rng).unwrap();

        assert_ne!(
            genuine.measurement().unwrap(),
            tampered.measurement().unwrap()
        );
    }

    #[test]
    fn park_and_resume_rebinds_memory() {
        let mut platform = Platform::hikey960();
        let (mut enclave, _) = booted_enclave(&mut platform);
        enclave.heap_write(&mut platform, 0, b"persistent").unwrap();
        let old_core = enclave.core();

        // Make the old core busy so resume picks a different one.
        enclave.park(&mut platform).unwrap();
        platform.set_core_load(old_core, 1000).unwrap();
        assert_eq!(enclave.state(), EnclaveState::Parked);
        // L1 of the old core holds no residue.
        assert_eq!(platform.core(old_core).unwrap().l1().resident_lines(), 0);
        // While parked, nobody can read the locked memory.
        let mut buf = [0u8; 10];
        assert!(platform
            .read_at(
                Agent::NormalWorld { core: CoreId(0) },
                enclave.region(),
                enclave.heap_base(),
                &mut buf
            )
            .is_err());

        enclave.resume(&mut platform).unwrap();
        assert_ne!(enclave.core(), old_core);
        // Data survived the core migration.
        enclave.heap_read(&mut platform, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"persistent");
        enclave.teardown(&mut platform).unwrap();
    }

    #[test]
    fn teardown_scrubs_and_releases() {
        let mut platform = Platform::hikey960();
        let (mut enclave, _) = booted_enclave(&mut platform);
        enclave
            .heap_write(&mut platform, 0, b"key material")
            .unwrap();
        let region = enclave.region();
        let core = enclave.core();
        enclave.teardown(&mut platform).unwrap();
        // Region handle is gone (released back to the allocator).
        assert!(platform.read_region_trusted(region).is_err());
        // The core's L1 holds nothing.
        assert_eq!(platform.core(core).unwrap().l1().resident_lines(), 0);
    }

    #[test]
    fn secure_mic_proxy_round_trip_and_cost() {
        let mut platform = Platform::hikey960();
        // OMG assigns the mic to the secure world during preparation.
        platform
            .assign_microphone(Agent::TrustedFirmware, PeriphAssignment::SecureWorld)
            .unwrap();
        platform
            .microphone_mut()
            .push_recording(&[100, -200, 300, -400]);

        let (enclave, _) = booted_enclave(&mut platform);
        let clock = platform.clock();
        let switches_before = clock.world_switch_count();

        let samples = enclave.secure_mic_read(&mut platform, 4).unwrap();
        assert_eq!(samples, vec![100, -200, 300, -400]);
        // Exactly two world switches (SA -> SW -> SA) = the 0.3 ms of [11].
        assert_eq!(clock.world_switch_count() - switches_before, 2);

        // The normal world still cannot read the mic.
        assert!(platform
            .read_microphone(Agent::NormalWorld { core: CoreId(0) }, 1)
            .is_err());
    }

    #[test]
    fn secure_mic_proxy_recovers_from_empty_device() {
        let mut platform = Platform::hikey960();
        platform
            .assign_microphone(Agent::TrustedFirmware, PeriphAssignment::SecureWorld)
            .unwrap();
        let (enclave, _) = booted_enclave(&mut platform);
        let err = enclave.secure_mic_read(&mut platform, 16).unwrap_err();
        assert!(matches!(
            err,
            SanctuaryError::Hal(HalError::PeripheralExhausted { .. })
        ));
        // The enclave is still usable (the SMC returned).
        assert_eq!(
            platform.core(enclave.core()).unwrap().world(),
            World::Normal
        );
        platform.microphone_mut().push_recording(&[7]);
        assert_eq!(enclave.secure_mic_read(&mut platform, 1).unwrap(), vec![7]);
    }

    #[test]
    fn shared_mailbox_visible_to_os() {
        let mut platform = Platform::hikey960();
        let (enclave, _) = booted_enclave(&mut platform);
        enclave
            .shared_write(&mut platform, 0, b"result: yes")
            .unwrap();
        let mut buf = [0u8; 11];
        platform
            .read_at(
                Agent::NormalWorld { core: CoreId(0) },
                enclave.shared_region(),
                0,
                &mut buf,
            )
            .unwrap();
        assert_eq!(&buf, b"result: yes");
    }

    #[test]
    fn sl_image_is_deterministic() {
        assert_eq!(sanctuary_library_image(), sanctuary_library_image());
        assert_eq!(sanctuary_library_image().len(), 4096);
    }

    #[test]
    fn multiple_enclaves_coexist_and_are_mutually_isolated() {
        // "SANCTUARY extends TrustZone to provide an arbitrary number of
        // user-space enclaves" (§III-B) — and it must be "secure against
        // malicious SAs": enclave A cannot read enclave B.
        let mut platform = Platform::hikey960();
        let mut rng = ChaChaRng::seed_from_u64(40);
        let pki = DevicePki::new(&mut rng).unwrap();

        let mut a =
            SanctuaryEnclave::setup(&mut platform, EnclaveConfig::new("a", b"app A".to_vec()))
                .unwrap();
        a.boot(&mut platform, &pki, &mut rng).unwrap();
        let mut b =
            SanctuaryEnclave::setup(&mut platform, EnclaveConfig::new("b", b"app B".to_vec()))
                .unwrap();
        b.boot(&mut platform, &pki, &mut rng).unwrap();
        assert_ne!(a.core(), b.core());
        assert_ne!(
            a.identity().unwrap().public_key(),
            b.identity().unwrap().public_key()
        );

        a.heap_write(&mut platform, 0, b"secret of A").unwrap();
        b.heap_write(&mut platform, 0, b"secret of B").unwrap();

        // A malicious SA on B's core cannot touch A's region and vice versa.
        let mut buf = [0u8; 11];
        assert!(platform
            .read_at(
                Agent::SanctuaryApp { core: b.core() },
                a.region(),
                a.heap_base(),
                &mut buf
            )
            .is_err());
        assert!(platform
            .read_at(
                Agent::SanctuaryApp { core: a.core() },
                b.region(),
                b.heap_base(),
                &mut buf
            )
            .is_err());

        // Both keep working independently.
        a.heap_read(&mut platform, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"secret of A");
        b.heap_read(&mut platform, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"secret of B");

        // Tearing down A scrubs A but leaves B untouched.
        a.teardown(&mut platform).unwrap();
        b.heap_read(&mut platform, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"secret of B");
        b.teardown(&mut platform).unwrap();
    }

    #[test]
    fn enclave_count_limited_by_available_cores() {
        // An octa-core platform must keep at least one core for the OS, so
        // at most 7 concurrent enclaves fit.
        let mut platform = Platform::hikey960();
        let mut enclaves = Vec::new();
        for i in 0..7 {
            enclaves.push(
                SanctuaryEnclave::setup(
                    &mut platform,
                    EnclaveConfig::new(&format!("e{i}"), vec![i as u8]),
                )
                .unwrap(),
            );
        }
        assert!(matches!(
            SanctuaryEnclave::setup(&mut platform, EnclaveConfig::new("e8", b"x".to_vec())),
            Err(SanctuaryError::Hal(HalError::NoEligibleCore))
        ));
    }
}
