//! Error types for the SANCTUARY layer.

use std::error::Error;
use std::fmt;

use omg_crypto::CryptoError;
use omg_hal::HalError;

/// Errors raised by the SANCTUARY enclave architecture.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SanctuaryError {
    /// A platform (HAL) operation failed — e.g. a TZASC fault.
    Hal(HalError),
    /// A cryptographic operation failed.
    Crypto(CryptoError),
    /// The enclave is not in the right life-cycle state for the operation.
    BadState {
        /// The operation that was attempted.
        operation: &'static str,
        /// The state the enclave was actually in.
        state: &'static str,
    },
    /// An attestation report failed verification.
    AttestationFailed(&'static str),
    /// The enclave code image is larger than the enclave memory.
    CodeTooLarge {
        /// Size of the image in bytes.
        code: usize,
        /// Size of the enclave memory in bytes.
        memory: usize,
    },
    /// An in-enclave address range was out of bounds.
    OutOfBounds {
        /// Offset of the attempted access.
        offset: u64,
        /// Length of the attempted access.
        len: usize,
    },
}

impl fmt::Display for SanctuaryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SanctuaryError::Hal(e) => write!(f, "platform error: {e}"),
            SanctuaryError::Crypto(e) => write!(f, "crypto error: {e}"),
            SanctuaryError::BadState { operation, state } => {
                write!(f, "cannot {operation} while enclave is {state}")
            }
            SanctuaryError::AttestationFailed(why) => write!(f, "attestation failed: {why}"),
            SanctuaryError::CodeTooLarge { code, memory } => {
                write!(
                    f,
                    "enclave image of {code} bytes exceeds {memory}-byte enclave memory"
                )
            }
            SanctuaryError::OutOfBounds { offset, len } => {
                write!(
                    f,
                    "enclave access at offset {offset} of {len} bytes is out of bounds"
                )
            }
        }
    }
}

impl Error for SanctuaryError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SanctuaryError::Hal(e) => Some(e),
            SanctuaryError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HalError> for SanctuaryError {
    fn from(e: HalError) -> Self {
        SanctuaryError::Hal(e)
    }
}

impl From<CryptoError> for SanctuaryError {
    fn from(e: CryptoError) -> Self {
        SanctuaryError::Crypto(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SanctuaryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SanctuaryError::from(HalError::NoEligibleCore);
        assert!(e.to_string().contains("platform error"));
        assert!(Error::source(&e).is_some());
        let e = SanctuaryError::AttestationFailed("measurement mismatch");
        assert!(e.to_string().contains("measurement mismatch"));
        assert!(Error::source(&e).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SanctuaryError>();
    }
}
