//! Enclave measurement.
//!
//! SANCTUARY attests an enclave by hashing the initial memory content of the
//! SANCTUARY Library plus the SANCTUARY App before the core boots (paper
//! §III-B step 2 and §V phase I). Any manipulation of the loaded code
//! changes the measurement and is detected when the report is verified.

use std::fmt;

use omg_crypto::ct::ct_eq;
use omg_crypto::sha256::Sha256;

/// A SHA-256 measurement of enclave memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement([u8; 32]);

impl Measurement {
    /// Measures a memory image.
    ///
    /// # Examples
    ///
    /// ```
    /// use omg_sanctuary::measurement::Measurement;
    ///
    /// let a = Measurement::of(b"enclave code v1");
    /// let b = Measurement::of(b"enclave code v1");
    /// let tampered = Measurement::of(b"enclave code v2");
    /// assert_eq!(a, b);
    /// assert_ne!(a, tampered);
    /// ```
    pub fn of(image: &[u8]) -> Self {
        Measurement(Sha256::digest(image))
    }

    /// Constructs from raw digest bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Measurement(bytes)
    }

    /// The raw digest.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Constant-time equality check (measurements are compared during
    /// attestation verification).
    pub fn ct_matches(&self, other: &Measurement) -> bool {
        ct_eq(&self.0, &other.0)
    }
}

impl fmt::Display for Measurement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn measurement_is_deterministic() {
        assert_eq!(Measurement::of(b"abc"), Measurement::of(b"abc"));
    }

    #[test]
    fn display_is_hex() {
        let m = Measurement::of(b"abc");
        let s = m.to_string();
        assert_eq!(s.len(), 64);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
        // Matches the SHA-256 of "abc".
        assert!(s.starts_with("ba7816bf"));
    }

    #[test]
    fn roundtrip_bytes() {
        let m = Measurement::of(b"image");
        let m2 = Measurement::from_bytes(*m.as_bytes());
        assert_eq!(m, m2);
        assert!(m.ct_matches(&m2));
    }

    proptest! {
        /// The attestation security property: flipping any single bit of the
        /// image changes the measurement.
        #[test]
        fn prop_any_bitflip_changes_measurement(
            image in proptest::collection::vec(any::<u8>(), 1..512),
            byte in any::<usize>(),
            bit in 0u8..8,
        ) {
            let mut tampered = image.clone();
            let idx = byte % tampered.len();
            tampered[idx] ^= 1 << bit;
            let m1 = Measurement::of(&image);
            let m2 = Measurement::of(&tampered);
            prop_assert_ne!(m1, m2);
            prop_assert!(!m1.ct_matches(&m2));
        }
    }
}
