//! Offline Model Guard (OMG) — workspace facade.
//!
//! This crate re-exports the nine workspace crates under one roof so the
//! root integration tests, the `examples/` directory and downstream users
//! can depend on a single package. The layering mirrors the paper's stack:
//!
//! ```text
//! omg_crypto ─→ omg_hal ─→ omg_sanctuary ─→ { omg_nn, omg_speech }
//!      └→ omg_train ─→ omg_core ─→ omg_baselines ─→ omg_bench
//! ```
//!
//! See the individual crates for the real documentation; start with
//! [`core`] for the protocol and [`bench`] for the paper's measurements.
//!
//! # Quickstart
//!
//! The full protocol — prepare (attestation + encrypted provisioning),
//! initialize (key release + in-enclave decryption), classify — against a
//! small stand-in model:
//!
//! ```
//! use omg::core::device::{expected_enclave_measurement, OmgDevice};
//! use omg::core::{User, Vendor};
//! # use omg::nn::model::{Activation, Model, Op};
//! # use omg::nn::quantize::QuantParams;
//! # use omg::nn::tensor::DType;
//! # use omg::speech::frontend::FINGERPRINT_LEN;
//! #
//! # fn tiny_model() -> Model {
//! #     let mut b = Model::builder();
//! #     let input = b.add_activation("in", vec![1, FINGERPRINT_LEN], DType::I8,
//! #         Some(QuantParams { scale: 1.0 / 255.0, zero_point: -128 }));
//! #     let w = b.add_weight_i8("w", vec![12, FINGERPRINT_LEN],
//! #         vec![1i8; 12 * FINGERPRINT_LEN], QuantParams::symmetric(0.01));
//! #     let bias = b.add_weight_i32("b", vec![12], vec![0; 12]);
//! #     let out = b.add_activation("out", vec![1, 12], DType::I8,
//! #         Some(QuantParams { scale: 0.5, zero_point: 0 }));
//! #     b.add_op(Op::FullyConnected { input, filter: w, bias, output: out,
//! #         activation: Activation::None });
//! #     b.set_input(input);
//! #     b.set_output(out);
//! #     b.set_labels(omg::speech::dataset::LABELS);
//! #     b.build().unwrap()
//! # }
//! let mut device = OmgDevice::new(1)?;
//! let mut user = User::new(2);
//! let mut vendor = Vendor::new(3, "kws", tiny_model(), expected_enclave_measurement());
//!
//! device.prepare(&mut user, &mut vendor)?;   // phase I   (steps 1-4)
//! device.initialize(&mut vendor)?;           // phase II  (steps 5-6)
//!
//! let samples = vec![500i16; 16_000];        // phase III (steps 7-8)
//! let result = device.classify_utterance(&samples)?;
//! assert!(!result.label.is_empty());
//! # Ok::<(), omg::core::OmgError>(())
//! ```
//!
//! For bursts of queries, open a warm [`core::session::QuerySession`]
//! instead of paying the park/resume cycle per utterance — and scale out
//! with a [`core::session::Fleet`]:
//!
//! ```
//! # use omg::core::device::{expected_enclave_measurement, OmgDevice};
//! # use omg::core::{User, Vendor};
//! # use omg::nn::model::{Activation, Model, Op};
//! # use omg::nn::quantize::QuantParams;
//! # use omg::nn::tensor::DType;
//! # use omg::speech::frontend::FINGERPRINT_LEN;
//! #
//! # fn tiny_model() -> Model {
//! #     let mut b = Model::builder();
//! #     let input = b.add_activation("in", vec![1, FINGERPRINT_LEN], DType::I8,
//! #         Some(QuantParams { scale: 1.0 / 255.0, zero_point: -128 }));
//! #     let w = b.add_weight_i8("w", vec![12, FINGERPRINT_LEN],
//! #         vec![1i8; 12 * FINGERPRINT_LEN], QuantParams::symmetric(0.01));
//! #     let bias = b.add_weight_i32("b", vec![12], vec![0; 12]);
//! #     let out = b.add_activation("out", vec![1, 12], DType::I8,
//! #         Some(QuantParams { scale: 0.5, zero_point: 0 }));
//! #     b.add_op(Op::FullyConnected { input, filter: w, bias, output: out,
//! #         activation: Activation::None });
//! #     b.set_input(input);
//! #     b.set_output(out);
//! #     b.set_labels(omg::speech::dataset::LABELS);
//! #     b.build().unwrap()
//! # }
//! # let mut device = OmgDevice::new(1)?;
//! # let mut user = User::new(2);
//! # let mut vendor = Vendor::new(3, "kws", tiny_model(), expected_enclave_measurement());
//! # device.prepare(&mut user, &mut vendor)?;
//! # device.initialize(&mut vendor)?;
//! device.set_park_between_queries(true);
//!
//! let mut session = device.session()?;       // resume once
//! let samples = vec![500i16; 16_000];
//! for _ in 0..3 {
//!     let t = session.classify(&samples)?;   // warm: no park/resume, no
//!     assert!(!t.label.is_empty());          // per-query allocation
//! }
//! assert_eq!(session.queries(), 3);
//! session.finish()?;                         // scrub arena + park once
//! # Ok::<(), omg::core::OmgError>(())
//! ```
//!
//! To serve many principals concurrently, put a [`serve::ServeHandle`]
//! fleet in front: N provisioned devices on worker threads behind a
//! bounded admission queue, with latency percentiles and graceful drain:
//!
//! ```
//! use omg::serve::{ServeConfig, ServeHandle};
//! # use omg::nn::model::{Activation, Model, Op};
//! # use omg::nn::quantize::QuantParams;
//! # use omg::nn::tensor::DType;
//! # use omg::speech::frontend::FINGERPRINT_LEN;
//! #
//! # fn tiny_model() -> Model {
//! #     let mut b = Model::builder();
//! #     let input = b.add_activation("in", vec![1, FINGERPRINT_LEN], DType::I8,
//! #         Some(QuantParams { scale: 1.0 / 255.0, zero_point: -128 }));
//! #     let w = b.add_weight_i8("w", vec![12, FINGERPRINT_LEN],
//! #         vec![1i8; 12 * FINGERPRINT_LEN], QuantParams::symmetric(0.01));
//! #     let bias = b.add_weight_i32("b", vec![12], vec![0; 12]);
//! #     let out = b.add_activation("out", vec![1, 12], DType::I8,
//! #         Some(QuantParams { scale: 0.5, zero_point: 0 }));
//! #     b.add_op(Op::FullyConnected { input, filter: w, bias, output: out,
//! #         activation: Activation::None });
//! #     b.set_input(input);
//! #     b.set_output(out);
//! #     b.set_labels(omg::speech::dataset::LABELS);
//! #     b.build().unwrap()
//! # }
//! let handle = ServeHandle::provision(2, ServeConfig::default(), "kws", tiny_model(), 9)?;
//! let samples = vec![500i16; 16_000];
//! let pending: Vec<_> = (0..6).map(|_| handle.submit(&samples).unwrap()).collect();
//! for p in pending {
//!     assert!(!p.wait()?.label.is_empty());
//! }
//! let drained = handle.drain();                    // finish + scrub + park
//! assert!(drained.is_healthy());
//! assert_eq!(drained.stats.completed, 6);
//! assert!(drained.stats.p99 >= drained.stats.p50); // percentiles reported
//! # Ok::<(), omg::serve::ServeError>(())
//! ```

pub use omg_baselines as baselines;
pub use omg_bench as bench;
pub use omg_core as core;
pub use omg_crypto as crypto;
pub use omg_hal as hal;
pub use omg_nn as nn;
pub use omg_obs as obs;
pub use omg_sanctuary as sanctuary;
pub use omg_serve as serve;
pub use omg_sim as sim;
pub use omg_speech as speech;
pub use omg_train as train;
