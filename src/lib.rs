//! Offline Model Guard (OMG) — workspace facade.
//!
//! This crate re-exports the nine workspace crates under one roof so the
//! root integration tests, the `examples/` directory and downstream users
//! can depend on a single package. The layering mirrors the paper's stack:
//!
//! ```text
//! omg_crypto ─→ omg_hal ─→ omg_sanctuary ─→ { omg_nn, omg_speech }
//!      └→ omg_train ─→ omg_core ─→ omg_baselines ─→ omg_bench
//! ```
//!
//! See the individual crates for the real documentation; start with
//! [`core`] for the protocol and [`bench`] for the paper's measurements.

pub use omg_baselines as baselines;
pub use omg_bench as bench;
pub use omg_core as core;
pub use omg_crypto as crypto;
pub use omg_hal as hal;
pub use omg_nn as nn;
pub use omg_sanctuary as sanctuary;
pub use omg_speech as speech;
pub use omg_train as train;
