//! Offline, API-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`] traits with
//! the little-endian accessors the OMG model format uses. `Bytes` here is a
//! simple owned buffer with a read cursor — no reference-counted slicing —
//! which is all the workspace requires.

/// Read side: a cursor over binary data.
pub trait Buf {
    /// Bytes remaining between the cursor and the end of the buffer.
    fn remaining(&self) -> usize;
    /// Returns the unread portion of the buffer.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            self.remaining() >= dst.len(),
            "copy_to_slice: buffer underflow"
        );
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_i32_le(&mut self) -> i32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        i32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

/// Write side: appends binary data.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_slice(&[v as u8]);
    }

    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

/// An owned, growable byte buffer (write side).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<BytesMut> for Vec<u8> {
    fn from(b: BytesMut) -> Vec<u8> {
        b.data
    }
}

/// An owned byte buffer with a read cursor (read side).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }

    pub fn from_vec(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.remaining(), "advance past end of buffer");
        self.pos += cnt;
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes::from_vec(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut w = BytesMut::with_capacity(64);
        w.put_slice(b"OMGM");
        w.put_u8(7);
        w.put_u16_le(0x1234);
        w.put_u32_le(0xdead_beef);
        w.put_i32_le(-42);
        w.put_f32_le(1.5);
        w.put_u64_le(0x0102_0304_0506_0708);

        let mut r = Bytes::copy_from_slice(&w.to_vec());
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"OMGM");
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0x1234);
        assert_eq!(r.get_u32_le(), 0xdead_beef);
        assert_eq!(r.get_i32_le(), -42);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(r.remaining(), 0);
        assert!(!r.has_remaining());
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1, 2]);
        r.get_u32_le();
    }

    #[test]
    fn freeze_preserves_contents() {
        let mut w = BytesMut::new();
        w.put_u32_le(99);
        let mut r = w.freeze();
        assert_eq!(r.get_u32_le(), 99);
    }
}
