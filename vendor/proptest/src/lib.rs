//! Offline, API-compatible subset of the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the surface the OMG workspace uses: the [`proptest!`] macro,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! [`arbitrary::any`], range and tuple strategies, and
//! [`collection::vec`].
//!
//! Differences from upstream, deliberately accepted for an offline stub:
//!
//! - **Simple shrinking.** On failure, the failing inputs are minimized by
//!   halving numeric values toward their range start and
//!   halving/truncating collections (plus element-wise shrinks); the
//!   minimized counterexample is printed before the test re-panics with
//!   it. Upstream's lazy shrink trees are not reproduced.
//! - **Fixed case count** (default 64, override with `PROPTEST_CASES`).
//! - Values are sampled uniformly; there is no bias toward boundary values.

pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value: Clone + std::fmt::Debug;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Candidate simplifications of a failing `value`, simplest first.
        /// Every candidate must be strictly "smaller" than `value` so the
        /// minimization loop terminates. An empty vector means the value
        /// cannot shrink further (the default).
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }
    }

    /// Ties a test-body closure's argument type to a strategy's `Value`,
    /// so the `proptest!` macro's closure type-checks without annotations.
    #[doc(hidden)]
    pub fn bind_body<S: Strategy, R, F: Fn(S::Value) -> R>(_strategy: &S, body: F) -> F {
        body
    }

    /// Strategy for the full range of a type, returned by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: rand::SampleStandard + Clone + std::fmt::Debug> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            runner.rng().gen::<T>()
        }
        // `any` has no ordering to shrink along generically; values from
        // `any::<T>()` are reported as-is.
    }

    /// Halving candidates between `start` and a failing integer `value`.
    macro_rules! int_shrink {
        ($t:ty, $start:expr, $value:expr) => {{
            let (start, value): ($t, $t) = ($start, $value);
            let mut out: Vec<$t> = Vec::new();
            if value != start {
                out.push(start);
                let mid = start.midpoint(value);
                if mid != start && mid != value {
                    out.push(mid);
                }
                // Step one toward the start (covers the final gap).
                let step = if value > start { value - 1 } else { value + 1 };
                if step != start && step != mid {
                    out.push(step);
                }
            }
            out
        }};
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink!($t, self.start, *value)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink!($t, *self.start(), *value)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *value != self.start {
                        out.push(self.start);
                        let mid = self.start + (*value - self.start) / 2.0;
                        if mid != self.start && mid != *value {
                            out.push(mid);
                        }
                    }
                    out
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let start = *self.start();
                    let mut out = Vec::new();
                    if *value != start {
                        out.push(start);
                        let mid = start + (*value - start) / 2.0;
                        if mid != start && mid != *value {
                            out.push(mid);
                        }
                    }
                    out
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_range_from_strategy {
        ($($t:ty),*) => {$(
            /// `start..` samples uniformly from `start..=MAX`.
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.start..=<$t>::MAX)
                }

                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink!($t, self.start, *value)
                }
            }
        )*};
    }

    impl_range_from_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }

                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// Strategy producing any value of `T` (uniform over the type's range).
    pub fn any<T: rand::SampleStandard>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = runner
                .rng()
                .gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }

        /// Length halving/truncation toward the minimum length, then
        /// element-wise shrinks (each element's first candidate).
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let mut out: Vec<Self::Value> = Vec::new();
            let lo = self.size.lo;
            if value.len() > lo {
                out.push(value[..lo].to_vec());
                let half = lo.max(value.len() / 2);
                if half < value.len() && half > lo {
                    out.push(value[..half].to_vec());
                }
                if value.len() - 1 > half {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            for (i, elem) in value.iter().enumerate() {
                for cand in self.element.shrink(elem) {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Default number of cases per property (upstream default is 256; this
    /// stub trades cases for suite runtime). Override with `PROPTEST_CASES`.
    pub const DEFAULT_CASES: usize = 64;

    /// Holds the deterministic RNG and case budget for one property test.
    pub struct TestRunner {
        rng: StdRng,
        cases: usize,
    }

    impl TestRunner {
        /// Creates a runner seeded from the test's identity, so every run of
        /// a given test sees the same sequence of inputs.
        pub fn new(test_id: &str) -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_CASES);
            TestRunner {
                rng: StdRng::seed_from_u64(fnv1a(test_id.as_bytes())),
                cases,
            }
        }

        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }

        pub fn cases(&self) -> usize {
            self.cases
        }
    }

    fn fnv1a(data: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in data {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }

    /// Upper bound on shrink candidates tried per failure, so pathological
    /// strategies cannot loop forever (each accepted candidate is strictly
    /// smaller, but the trial count is bounded anyway).
    pub const MAX_SHRINK_TRIALS: usize = 1024;

    /// Greedily minimizes a failing value: repeatedly replaces it with the
    /// first shrink candidate that still fails, until no candidate fails or
    /// the trial budget runs out. Returns the smallest failing value found.
    ///
    /// The panic hook is silenced for the duration (like upstream), so the
    /// hundreds of caught panics from shrink trials do not bury the
    /// one-line minimized-counterexample report. Concurrent tests that
    /// panic inside this window lose their message but still fail.
    pub fn minimize<S, F>(strategy: &S, mut value: S::Value, mut fails: F) -> S::Value
    where
        S: crate::strategy::Strategy,
        F: FnMut(&S::Value) -> bool,
    {
        let saved_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let mut trials = 0usize;
        let result = 'search: loop {
            let mut progressed = false;
            for candidate in strategy.shrink(&value) {
                trials += 1;
                if trials > MAX_SHRINK_TRIALS {
                    break 'search value;
                }
                if fails(&candidate) {
                    value = candidate;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break 'search value;
            }
        };
        std::panic::set_hook(saved_hook);
        result
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each function runs its body against
/// `PROPTEST_CASES` (default 64) deterministic samples of its strategies.
/// A failing case is minimized by the strategies' shrink rules; the
/// minimized counterexample is printed and the body re-panics with it.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let mut __runner = $crate::test_runner::TestRunner::new(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                // All argument strategies combine into one tuple strategy,
                // so generation *and shrinking* see the case as a whole.
                let __strat = ($($strat,)+);
                // The closure lets `prop_assume!` skip a case via `return`
                // and makes the body re-runnable during shrinking.
                let __run = $crate::strategy::bind_body(&__strat, |__vals| {
                    let ($($arg,)+) = __vals;
                    $body
                });
                for __case in 0..__runner.cases() {
                    let __vals = $crate::strategy::Strategy::generate(&__strat, &mut __runner);
                    let __failed = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| { __run(__vals.clone()); }),
                    )
                    .is_err();
                    if __failed {
                        let __minimized =
                            $crate::test_runner::minimize(&__strat, __vals, |__cand| {
                                ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                                    || { __run(::std::clone::Clone::clone(__cand)); },
                                ))
                                .is_err()
                            });
                        eprintln!(
                            "proptest: {} failed at case {}; minimized counterexample: {:?}",
                            stringify!($name),
                            __case,
                            __minimized,
                        );
                        // Re-run uncaught so the test reports the real panic.
                        __run(__minimized);
                        unreachable!("minimized counterexample no longer fails");
                    }
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in -50i32..50,
            y in 1usize..=8,
            f in -1.0f32..1.0,
        ) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..=8).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_respects_size_bounds(v in crate::collection::vec(any::<u8>(), 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
        }

        #[test]
        fn tuples_compose(pair in (0u64..1000, any::<u8>())) {
            prop_assert!(pair.0 < 1000);
        }

        #[test]
        fn assume_skips_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn same_test_id_gives_same_sequence() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRunner;
        let strat = crate::collection::vec(any::<u64>(), 0..16);
        let mut a = TestRunner::new("id");
        let mut b = TestRunner::new("id");
        let mut c = TestRunner::new("other");
        let va: Vec<_> = (0..8).map(|_| strat.generate(&mut a)).collect();
        let vb: Vec<_> = (0..8).map(|_| strat.generate(&mut b)).collect();
        let vc: Vec<_> = (0..8).map(|_| strat.generate(&mut c)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn integer_shrink_minimizes_to_boundary() {
        use crate::test_runner::minimize;
        // Property "v < 37" fails for v >= 37; the minimal counterexample
        // in 0..1000 is exactly 37.
        let strat = 0usize..1000;
        let minimized = minimize(&strat, 612, |v| *v >= 37);
        assert_eq!(minimized, 37);
        // Already-minimal values stay put.
        assert_eq!(minimize(&strat, 37, |v| *v >= 37), 37);
    }

    #[test]
    fn signed_shrink_moves_toward_range_start() {
        use crate::test_runner::minimize;
        let strat = -128i8..=127;
        // Fails for v >= 0: minimal failing value is 0.
        assert_eq!(minimize(&strat, 99, |v| *v >= 0), 0);
        // midpoint of the full i8 range must not overflow.
        let cands = crate::strategy::Strategy::shrink(&strat, &127i8);
        assert!(cands.contains(&-128));
    }

    #[test]
    fn vec_shrink_truncates_and_respects_minimum_len() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(0u8..100, 2..10);
        let value = vec![50u8, 60, 70, 80, 90];
        for cand in strat.shrink(&value) {
            assert!((2..10).contains(&cand.len()), "bad len {}", cand.len());
            assert_ne!(cand, value);
        }
        // Minimization drives both length and elements down.
        let minimized = crate::test_runner::minimize(&strat, value, |v| v.iter().any(|&x| x >= 10));
        assert_eq!(minimized.len(), 2);
        assert!(minimized.iter().any(|&x| x >= 10));
        assert!(minimized.iter().all(|&x| x <= 10));
    }

    #[test]
    fn tuple_shrink_shrinks_one_component_at_a_time() {
        use crate::strategy::Strategy;
        let strat = (0u32..100, 0u32..100);
        let value = (40u32, 80u32);
        for (a, b) in strat.shrink(&value) {
            let changed = usize::from(a != value.0) + usize::from(b != value.1);
            assert_eq!(changed, 1);
        }
        let minimized = crate::test_runner::minimize(&strat, value, |&(a, b)| a + b >= 30);
        assert_eq!(minimized.0 + minimized.1, 30);
    }

    #[test]
    fn minimize_is_bounded() {
        use crate::test_runner::{minimize, MAX_SHRINK_TRIALS};
        // A predicate that always fails keeps shrinking until the value is
        // fully minimal; the budget guarantees termination regardless.
        let strat = 0u64..u64::MAX;
        let mut trials = 0usize;
        let minimized = minimize(&strat, u64::MAX - 1, |_| {
            trials += 1;
            true
        });
        assert_eq!(minimized, 0);
        assert!(trials <= MAX_SHRINK_TRIALS);
    }
}
