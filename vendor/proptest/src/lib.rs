//! Offline, API-compatible subset of the `proptest` property-testing crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the surface the OMG workspace uses: the [`proptest!`] macro,
//! `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`,
//! [`arbitrary::any`], range and tuple strategies, and
//! [`collection::vec`].
//!
//! Differences from upstream, deliberately accepted for an offline stub:
//!
//! - **No shrinking.** Failures report the panic from the failing case; the
//!   run is deterministic (seeded from the test's module path and name), so
//!   a failure always reproduces with the same inputs.
//! - **Fixed case count** (default 64, override with `PROPTEST_CASES`).
//! - Values are sampled uniformly; there is no bias toward boundary values.

pub mod strategy {
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value;
    }

    /// Strategy for the full range of a type, returned by [`crate::arbitrary::any`].
    pub struct Any<T> {
        pub(crate) _marker: std::marker::PhantomData<T>,
    }

    impl<T: rand::SampleStandard> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            runner.rng().gen::<T>()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

    macro_rules! impl_range_from_strategy {
        ($($t:ty),*) => {$(
            /// `start..` samples uniformly from `start..=MAX`.
            impl Strategy for std::ops::RangeFrom<$t> {
                type Value = $t;

                fn generate(&self, runner: &mut TestRunner) -> $t {
                    runner.rng().gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_range_from_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+))+) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    ($(self.$idx.generate(runner),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
        (A: 0, B: 1, C: 2, D: 3, E: 4)
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    }
}

pub mod arbitrary {
    use crate::strategy::Any;

    /// Strategy producing any value of `T` (uniform over the type's range).
    pub fn any<T: rand::SampleStandard>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let len = runner
                .rng()
                .gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(runner)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Default number of cases per property (upstream default is 256; this
    /// stub trades cases for suite runtime). Override with `PROPTEST_CASES`.
    pub const DEFAULT_CASES: usize = 64;

    /// Holds the deterministic RNG and case budget for one property test.
    pub struct TestRunner {
        rng: StdRng,
        cases: usize,
    }

    impl TestRunner {
        /// Creates a runner seeded from the test's identity, so every run of
        /// a given test sees the same sequence of inputs.
        pub fn new(test_id: &str) -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_CASES);
            TestRunner {
                rng: StdRng::seed_from_u64(fnv1a(test_id.as_bytes())),
                cases,
            }
        }

        pub fn rng(&mut self) -> &mut StdRng {
            &mut self.rng
        }

        pub fn cases(&self) -> usize {
            self.cases
        }
    }

    fn fnv1a(data: &[u8]) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for &b in data {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each function runs its body against
/// `PROPTEST_CASES` (default 64) deterministic samples of its strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            // The immediately-called closure lets `prop_assume!` skip a
            // case via `return`.
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let mut runner = $crate::test_runner::TestRunner::new(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for _case in 0..runner.cases() {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut runner);
                    )+
                    (move || $body)();
                }
            }
        )+
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in -50i32..50,
            y in 1usize..=8,
            f in -1.0f32..1.0,
        ) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..=8).contains(&y));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_respects_size_bounds(v in crate::collection::vec(any::<u8>(), 3..10)) {
            prop_assert!((3..10).contains(&v.len()));
        }

        #[test]
        fn tuples_compose(pair in (0u64..1000, any::<u8>())) {
            prop_assert!(pair.0 < 1000);
        }

        #[test]
        fn assume_skips_cases(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n % 2, 1);
        }
    }

    #[test]
    fn same_test_id_gives_same_sequence() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRunner;
        let strat = crate::collection::vec(any::<u64>(), 0..16);
        let mut a = TestRunner::new("id");
        let mut b = TestRunner::new("id");
        let mut c = TestRunner::new("other");
        let va: Vec<_> = (0..8).map(|_| strat.generate(&mut a)).collect();
        let vb: Vec<_> = (0..8).map(|_| strat.generate(&mut b)).collect();
        let vc: Vec<_> = (0..8).map(|_| strat.generate(&mut c)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
