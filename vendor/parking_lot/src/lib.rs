//! Offline, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` calling convention:
//! `lock()` returns the guard directly (no poisoning — a poisoned std lock is
//! recovered transparently, matching parking_lot's panic-transparent
//! semantics closely enough for this workspace).

use std::sync::{self, TryLockError};

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
