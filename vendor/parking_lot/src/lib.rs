//! Offline, API-compatible subset of `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` calling convention:
//! `lock()` returns the guard directly (no poisoning — a poisoned std lock is
//! recovered transparently, matching parking_lot's panic-transparent
//! semantics closely enough for this workspace), and [`Condvar::wait`]
//! borrows the guard mutably instead of consuming it.

use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Unlike `std::sync::MutexGuard` this is an owned newtype, so
/// [`Condvar::wait`] can take it by `&mut` (parking_lot's calling
/// convention) and internally move the std guard out and back.
pub struct MutexGuard<'a, T: ?Sized> {
    // Always `Some` outside of `Condvar::wait*` internals.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<'a, T: ?Sized> MutexGuard<'a, T> {
    fn new(inner: sync::MutexGuard<'a, T>) -> Self {
        MutexGuard { inner: Some(inner) }
    }

    fn std(&self) -> &sync::MutexGuard<'a, T> {
        self.inner.as_ref().expect("guard vacated outside wait")
    }

    fn std_mut(&mut self) -> &mut sync::MutexGuard<'a, T> {
        self.inner.as_mut().expect("guard vacated outside wait")
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.std()
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std_mut()
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        (**self).fmt(f)
    }
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard::new(self.inner.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard::new(guard)),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard::new(e.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed (rather than a
    /// notification).
    pub fn timed_out(self) -> bool {
        self.0
    }
}

/// A condition variable following parking_lot's API: `wait` borrows the
/// guard mutably and re-acquires the lock before returning.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until this condition variable is notified. Spurious wakeups
    /// are possible, as with any condvar — re-check the predicate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard vacated outside wait");
        let reacquired = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard vacated outside wait");
        let (reacquired, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(reacquired);
        WaitTimeoutResult(result.timed_out())
    }

    /// Blocks until `condition` returns `false` (parking_lot's
    /// `wait_while`: waits *while* the condition holds).
    pub fn wait_while<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        mut condition: impl FnMut(&mut T) -> bool,
    ) {
        while condition(&mut **guard) {
            self.wait(guard);
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(7);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 7);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cvar.wait(&mut ready);
            }
            *ready
        });
        // Give the waiter a moment to park, then flip the flag.
        std::thread::sleep(Duration::from_millis(20));
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_one();
        }
        assert!(t.join().unwrap());
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let mut guard = lock.lock();
        let start = Instant::now();
        let result = cvar.wait_for(&mut guard, Duration::from_millis(30));
        assert!(result.timed_out());
        assert!(start.elapsed() >= Duration::from_millis(25));
        // The guard is usable (lock re-acquired) after the timeout.
        drop(guard);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn condvar_wait_while_rechecks_predicate() {
        let pair = Arc::new((Mutex::new(0u32), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            let mut count = lock.lock();
            cvar.wait_while(&mut count, |c| *c < 3);
            *count
        });
        for _ in 0..3 {
            std::thread::sleep(Duration::from_millis(5));
            let (lock, cvar) = &*pair;
            *lock.lock() += 1;
            cvar.notify_all();
        }
        assert_eq!(t.join().unwrap(), 3);
    }

    #[test]
    fn condvar_notify_all_wakes_everyone() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waiters: Vec<_> = (0..4)
            .map(|_| {
                let pair = Arc::clone(&pair);
                std::thread::spawn(move || {
                    let (lock, cvar) = &*pair;
                    let mut go = lock.lock();
                    while !*go {
                        cvar.wait(&mut go);
                    }
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        {
            let (lock, cvar) = &*pair;
            *lock.lock() = true;
            cvar.notify_all();
        }
        for w in waiters {
            w.join().unwrap();
        }
    }
}
