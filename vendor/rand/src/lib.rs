//! Offline, API-compatible subset of the `rand` crate (0.8 line).
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the surface the workspace uses: the [`RngCore`] /
//! [`SeedableRng`] / [`CryptoRng`] traits, the [`Rng`] extension trait with
//! `gen`, `gen_range` and `gen_bool`, [`rngs::StdRng`] (xoshiro256**),
//! [`rngs::mock::StepRng`], and [`seq::SliceRandom::shuffle`].
//!
//! Algorithms differ from upstream `rand` (stream values are NOT identical),
//! but all generators here are fully deterministic per seed, which is what
//! the OMG test-suite and benchmarks rely on.

use std::fmt;

/// Error type for fallible RNG operations (never produced by the
/// deterministic generators in this workspace).
#[derive(Debug)]
pub struct Error {
    msg: &'static str,
}

impl Error {
    pub fn new(msg: &'static str) -> Self {
        Error { msg }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rng error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// Marker trait for cryptographically secure generators.
pub trait CryptoRng {}

impl<R: CryptoRng + ?Sized> CryptoRng for &mut R {}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a 64-bit seed through SplitMix64 into a full seed, matching
    /// the upstream default-method behaviour (though not its exact output).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: used for seed expansion and xoshiro state initialisation.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types that `Rng::gen` can produce (the upstream `Standard` distribution).
pub trait SampleStandard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleStandard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl SampleStandard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl SampleStandard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer sampling in `[0, span)` via 128-bit widening multiply
/// with rejection (Lemire's method).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let threshold = span.wrapping_neg() % span;
    loop {
        let x = rng.next_u64();
        let m = u128::from(x) * u128::from(span);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let off = uniform_u64(rng, span);
                ((self.start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = uniform_u64(rng, span + 1);
                ((start as $wide).wrapping_add(off as $wide)) as $t
            }
        }
    )*};
}

impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Uniform sampling in `[0, span)` for 128-bit spans, via mask-and-reject
/// (expected < 2 iterations).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    let bits = 128 - (span - 1).leading_zeros();
    let mask = if bits == 0 {
        0
    } else {
        u128::MAX >> (128 - bits)
    };
    loop {
        let x = u128::sample(rng) & mask;
        if x < span {
            return x;
        }
    }
}

macro_rules! impl_range_int128 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let off = uniform_u128(rng, span);
                (self.start as u128).wrapping_add(off) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128);
                if span == u128::MAX {
                    return u128::sample(rng) as $t;
                }
                let off = uniform_u128(rng, span + 1);
                (start as u128).wrapping_add(off) as $t
            }
        }
    )*};
}

impl_range_int128!(u128, i128);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                // start + (end-start)*f can round up to exactly `end` when f
                // is the largest sub-1 sample; resample on that (≈2⁻²⁴ / 2⁻⁵³
                // per draw) to keep the upper bound exclusive.
                loop {
                    let f = <$t as SampleStandard>::sample(rng);
                    let v = self.start + (self.end - self.start) * f;
                    if v < self.end {
                        return v.max(self.start);
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // Sample f in [0, 1] *inclusive* so `end` is reachable, then
                // clamp against rounding overshoot in either direction.
                let f = <$t as SampleUnitInclusive>::sample_unit_inclusive(rng);
                (start + (end - start) * f).clamp(start, end)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Uniform floats over the *closed* unit interval `[0, 1]`, used by the
/// inclusive-range sampler.
trait SampleUnitInclusive {
    fn sample_unit_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUnitInclusive for f32 {
    fn sample_unit_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / ((1u32 << 24) - 1) as f32)
    }
}

impl SampleUnitInclusive for f64 {
    fn sample_unit_inclusive<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
    }
}

/// Convenience extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The standard deterministic generator: xoshiro256** seeded from 32
    /// bytes. (Upstream `StdRng` is ChaCha12; the contract this workspace
    /// relies on — deterministic, well-mixed output per seed — is the same.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0u64; 4] {
                // xoshiro requires a non-zero state; derive one deterministically.
                let mut sm = SplitMix64 {
                    state: 0x6f6d_672d_7374_6452,
                }; // "omg-stdR"
                for slot in &mut s {
                    *slot = sm.next();
                }
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }

    pub mod mock {
        use super::super::RngCore;

        /// A mock generator yielding `start`, `start + increment`, … —
        /// mirrors `rand::rngs::mock::StepRng`.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            a: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    v: initial,
                    a: increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let r = self.v;
                self.v = self.v.wrapping_add(self.a);
                r
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                for chunk in dest.chunks_mut(8) {
                    let bytes = self.next_u64().to_le_bytes();
                    chunk.copy_from_slice(&bytes[..chunk.len()]);
                }
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice helpers (only `shuffle` is needed by this workspace).
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        /// Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn stdrng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn stdrng_all_zero_seed_is_usable() {
        let mut r = StdRng::from_seed([0u8; 32]);
        let vals: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(vals.iter().any(|&v| v != 0));
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u8 = r.gen_range(1..=255);
            assert!(x >= 1);
            let y = r.gen_range(-5i32..5);
            assert!((-5..5).contains(&y));
            let f = r.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u = r.gen_range(0..3200usize);
            assert!(u < 3200);
        }
    }

    #[test]
    fn float_range_bounds_are_respected() {
        let mut r = StdRng::seed_from_u64(0xF10A7);
        for _ in 0..10_000 {
            let v = r.gen_range(0.0f32..1.0);
            assert!(v < 1.0, "exclusive upper bound returned");
            let w = r.gen_range(-2.0f64..-1.0);
            assert!((-2.0..-1.0).contains(&w));
        }
        // Degenerate inclusive ranges must return exactly their single value.
        assert_eq!(r.gen_range(2.5f32..=2.5), 2.5);
        assert_eq!(r.gen_range(1.5f64..=1.5), 1.5);
        // Inclusive bounds stay inside the closed interval.
        for _ in 0..10_000 {
            let v = r.gen_range(0.0f32..=1.0);
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn gen_float_unit_interval() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let f: f32 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = r.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(42, 10);
        assert_eq!(r.next_u64(), 42);
        assert_eq!(r.next_u64(), 52);
        assert_eq!(r.next_u64(), 62);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut a = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        a.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
