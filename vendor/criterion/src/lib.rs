//! Offline, API-compatible subset of the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset the OMG benches use: `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], per-group
//! `throughput` / `sample_size`, and [`Bencher::iter`] /
//! [`Bencher::iter_batched`]. Statistics are simpler than upstream —
//! each benchmark reports min / median / mean over the sampled iterations —
//! but the timing loop is a genuine measurement, so relative comparisons
//! between benches remain meaningful.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Reported alongside timings so byte-oriented benches print a rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Controls how `iter_batched` amortises setup cost. This harness always
/// re-runs setup per batch, so the variants only influence batch size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level benchmark context, handed to each `criterion_group!` target.
pub struct Criterion {
    /// When true (`cargo test` on a harness=false bench passes `--test`),
    /// run each benchmark exactly once for a smoke check.
    test_mode: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            test_mode,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Upstream parses CLI filters here; this harness runs everything.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("benchmark group: {name}");
        let test_mode = self.test_mode;
        let default_sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            throughput: None,
            sample_size: None,
            test_mode,
            default_sample_size,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let test_mode = self.test_mode;
        let sample_size = self.default_sample_size;
        run_benchmark(id, None, sample_size, test_mode, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
    test_mode: bool,
    default_sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = Some(n);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.default_sample_size);
        run_benchmark(&full_id, self.throughput, sample_size, self.test_mode, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F>(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    test_mode: bool,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let samples = if test_mode { 1 } else { sample_size };
    let mut bencher = Bencher {
        samples,
        durations: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    report(id, throughput, &mut bencher.durations);
}

fn report(id: &str, throughput: Option<Throughput>, durations: &mut [Duration]) {
    if durations.is_empty() {
        println!("  {id:<40} (no samples)");
        return;
    }
    durations.sort_unstable();
    let min = durations[0];
    let median = durations[durations.len() / 2];
    let total: Duration = durations.iter().sum();
    let mean = total / durations.len() as u32;
    let rate = throughput.map(|t| match t {
        Throughput::Bytes(b) => {
            let mib_s = b as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
            format!("  {mib_s:.1} MiB/s")
        }
        Throughput::Elements(e) => {
            let elem_s = e as f64 / mean.as_secs_f64();
            format!("  {elem_s:.1} elem/s")
        }
    });
    println!(
        "  {id:<40} min {min:>10.3?}  median {median:>10.3?}  mean {mean:>10.3?}{}",
        rate.unwrap_or_default()
    );
}

/// Runs the closure under test repeatedly and records per-sample timings.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // One untimed warm-up iteration.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let mut warm = setup();
        black_box(routine(&mut warm));
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.durations.push(start.elapsed());
        }
    }
}

/// Declares a benchmark group: a function that runs each target against a
/// fresh [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion {
            test_mode: false,
            default_sample_size: 5,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn iter_batched_reruns_setup() {
        let mut c = Criterion {
            test_mode: false,
            default_sample_size: 4,
        };
        let mut group = c.benchmark_group("g");
        let mut setups = 0u32;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u8; 8]
                },
                |v| v.len(),
                BatchSize::PerIteration,
            )
        });
        // 1 warm-up + 4 samples.
        assert_eq!(setups, 5);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            default_sample_size: 50,
        };
        let mut runs = 0u32;
        c.bench_function("once", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        // 1 warm-up + 1 sample.
        assert_eq!(runs, 2);
    }
}
