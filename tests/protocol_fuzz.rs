//! Randomized protocol-sequence testing: drive an [`OmgDevice`] through
//! arbitrary interleavings of valid and invalid operations and check that
//! (a) it never panics, (b) phase rules are enforced, and (c) a correctly
//! ordered run still succeeds afterwards.

use omg_bench::{cached_tiny_conv, ModelKind};
use omg_core::device::{expected_enclave_measurement, DevicePhase};
use omg_core::{OmgDevice, OmgError, User, Vendor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone, Copy)]
enum ProtocolOp {
    Prepare,
    Initialize,
    Query,
    UpdateModel,
    Teardown,
    TogglePark,
}

fn random_op(rng: &mut StdRng) -> ProtocolOp {
    match rng.gen_range(0..6) {
        0 => ProtocolOp::Prepare,
        1 => ProtocolOp::Initialize,
        2 => ProtocolOp::Query,
        3 => ProtocolOp::UpdateModel,
        4 => ProtocolOp::Teardown,
        _ => ProtocolOp::TogglePark,
    }
}

#[test]
fn random_operation_sequences_never_violate_the_state_machine() {
    let model = cached_tiny_conv(ModelKind::Fast);
    let samples = vec![700i16; 16_000];

    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut device = OmgDevice::new(seed).unwrap();
        let mut user = User::new(seed + 1000);
        let mut vendor = Vendor::new(
            seed + 2000,
            "kws",
            model.clone(),
            expected_enclave_measurement(),
        );
        let mut park = false;

        for step in 0..40 {
            let op = random_op(&mut rng);
            let phase_before = device.phase();
            match op {
                ProtocolOp::Prepare => {
                    let result = device.prepare(&mut user, &mut vendor);
                    match phase_before {
                        DevicePhase::Fresh => {
                            result.unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"))
                        }
                        _ => assert!(
                            matches!(result, Err(OmgError::PhaseViolation { .. })),
                            "seed {seed} step {step}: double prepare accepted"
                        ),
                    }
                }
                ProtocolOp::Initialize => {
                    let result = device.initialize(&mut vendor);
                    match phase_before {
                        DevicePhase::Prepared => {
                            result.unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"))
                        }
                        _ => assert!(
                            matches!(result, Err(OmgError::PhaseViolation { .. })),
                            "seed {seed} step {step}: initialize in {phase_before:?} accepted"
                        ),
                    }
                }
                ProtocolOp::Query => {
                    let result = device.classify_utterance(&samples);
                    match phase_before {
                        DevicePhase::Initialized => {
                            let t =
                                result.unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
                            assert!(t.class_index < 12);
                        }
                        _ => assert!(
                            matches!(result, Err(OmgError::PhaseViolation { .. })),
                            "seed {seed} step {step}: query in {phase_before:?} accepted"
                        ),
                    }
                }
                ProtocolOp::UpdateModel => {
                    let result = device.update_model(&mut vendor);
                    match phase_before {
                        DevicePhase::Fresh => assert!(
                            matches!(result, Err(OmgError::PhaseViolation { .. })),
                            "seed {seed} step {step}: update on fresh device accepted"
                        ),
                        _ => {
                            result.unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
                            assert_eq!(device.phase(), DevicePhase::Prepared);
                        }
                    }
                }
                ProtocolOp::Teardown => {
                    device
                        .teardown()
                        .unwrap_or_else(|e| panic!("seed {seed} step {step}: {e}"));
                    assert_eq!(device.phase(), DevicePhase::Fresh);
                }
                ProtocolOp::TogglePark => {
                    park = !park;
                    device.set_park_between_queries(park);
                }
            }
        }

        // Whatever state the fuzz left behind, a clean run must succeed.
        device.teardown().unwrap();
        device.prepare(&mut user, &mut vendor).unwrap();
        device.initialize(&mut vendor).unwrap();
        let t = device.classify_utterance(&samples).unwrap();
        assert!(
            t.class_index < 12,
            "seed {seed}: clean run failed after fuzzing"
        );
    }
}

/// The fuzz is driven exclusively by seeded [`StdRng`] — no wall-clock, no
/// ambient entropy — so two runs with the same seed must take the identical
/// path through the state machine. This pins the determinism the other
/// fuzz tests rely on for reproducible failures.
#[test]
fn identical_seeds_replay_identical_operation_outcomes() {
    let model = cached_tiny_conv(ModelKind::Fast);
    let samples = vec![250i16; 16_000];

    let run = |seed: u64| -> Vec<(u8, bool, DevicePhase)> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut device = OmgDevice::new(seed).unwrap();
        let mut user = User::new(seed + 1000);
        let mut vendor = Vendor::new(
            seed + 2000,
            "kws",
            model.clone(),
            expected_enclave_measurement(),
        );
        let mut log = Vec::new();
        for _ in 0..30 {
            let op = random_op(&mut rng);
            let ok = match op {
                ProtocolOp::Prepare => device.prepare(&mut user, &mut vendor).is_ok(),
                ProtocolOp::Initialize => device.initialize(&mut vendor).is_ok(),
                ProtocolOp::Query => device.classify_utterance(&samples).is_ok(),
                ProtocolOp::UpdateModel => device.update_model(&mut vendor).is_ok(),
                ProtocolOp::Teardown => device.teardown().is_ok(),
                ProtocolOp::TogglePark => {
                    device.set_park_between_queries(true);
                    true
                }
            };
            log.push((op as u8, ok, device.phase()));
        }
        log
    };

    let mut paths = Vec::new();
    for seed in [11u64, 42, 4096] {
        let first = run(seed);
        let second = run(seed);
        assert_eq!(
            first, second,
            "seed {seed}: fuzz path diverged between runs"
        );
        paths.push(first);
    }
    assert_ne!(
        paths[0], paths[1],
        "different seeds unexpectedly took the same path"
    );
}

#[test]
fn clock_is_monotone_across_arbitrary_operations() {
    let model = cached_tiny_conv(ModelKind::Fast);
    let mut device = OmgDevice::new(99).unwrap();
    let mut user = User::new(100);
    let mut vendor = Vendor::new(101, "kws", model, expected_enclave_measurement());
    let clock = device.clock();
    let mut rng = StdRng::seed_from_u64(7);
    let samples = vec![300i16; 16_000];

    let mut last = clock.now();
    for _ in 0..30 {
        let _ = match random_op(&mut rng) {
            ProtocolOp::Prepare => device.prepare(&mut user, &mut vendor).err(),
            ProtocolOp::Initialize => device.initialize(&mut vendor).err(),
            ProtocolOp::Query => device.classify_utterance(&samples).err(),
            ProtocolOp::UpdateModel => device.update_model(&mut vendor).err(),
            ProtocolOp::Teardown => device.teardown().err(),
            ProtocolOp::TogglePark => {
                device.set_park_between_queries(true);
                None
            }
        };
        let now = clock.now();
        assert!(now >= last, "virtual time went backwards");
        last = now;
    }
}
