//! Integration test: the complete OMG protocol with a genuinely trained
//! model, spanning every crate in the workspace (speech → train → nn →
//! crypto → hal → sanctuary → core).

use omg_bench::{cached_tiny_conv, paper_test_subset, run_table1, ModelKind};
use omg_core::device::{expected_enclave_measurement, DevicePhase};
use omg_core::{OmgDevice, User, Vendor};
use omg_speech::dataset::{SyntheticSpeechCommands, LABELS};

#[test]
fn end_to_end_protocol_with_trained_model() {
    let model = cached_tiny_conv(ModelKind::Fast);
    assert_eq!(model.labels().len(), 12);

    let mut device = OmgDevice::new(1).unwrap();
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model, expected_enclave_measurement());

    device.prepare(&mut user, &mut vendor).unwrap();
    assert_eq!(device.phase(), DevicePhase::Prepared);
    device.initialize(&mut vendor).unwrap();
    assert_eq!(device.phase(), DevicePhase::Initialized);

    // Process several utterances through the full microphone path.
    let data = SyntheticSpeechCommands::new(77);
    for class in [2usize, 5, 10] {
        let samples = data.utterance(class, 3).unwrap();
        device
            .platform_mut()
            .microphone_mut()
            .push_recording(&samples);
        let t = device.process_from_microphone(&mut user).unwrap();
        assert!(t.class_index < 12);
        assert!(LABELS.contains(&&*t.label));
        assert!(t.score > 0.0);
    }
    assert_eq!(user.transcriptions().len(), 3);

    // The protocol trace must cover all eight steps of Fig. 2.
    let numbers: Vec<u8> = device.trace().steps().iter().map(|s| s.number).collect();
    for step in 1..=8u8 {
        assert!(numbers.contains(&step), "missing protocol step {step}");
    }

    device.teardown().unwrap();
    assert_eq!(device.phase(), DevicePhase::Fresh);
}

#[test]
fn fig2_eight_step_trace_invariant_holds_under_repeated_runs() {
    let model = cached_tiny_conv(ModelKind::Fast);
    let data = SyntheticSpeechCommands::new(77);
    let samples = data.utterance(4, 9).unwrap();

    let mut reference: Option<Vec<(u8, String)>> = None;
    for run in 0..3 {
        let mut device = OmgDevice::new(1).unwrap();
        let mut user = User::new(2);
        let mut vendor = Vendor::new(3, "kws", model.clone(), expected_enclave_measurement());
        device.prepare(&mut user, &mut vendor).unwrap();
        device.initialize(&mut vendor).unwrap();
        device
            .platform_mut()
            .microphone_mut()
            .push_recording(&samples);
        device.process_from_microphone(&mut user).unwrap();

        let steps = device.trace().steps();
        let numbers: Vec<u8> = steps.iter().map(|s| s.number).collect();

        // (a) every Fig. 2 step is present,
        for step in 1..=8u8 {
            assert!(
                numbers.contains(&step),
                "run {run}: missing protocol step {step}"
            );
        }
        // (b) steps first occur in Fig. 2 order,
        let firsts: Vec<u8> = {
            let mut seen = Vec::new();
            for &n in &numbers {
                if !seen.contains(&n) {
                    seen.push(n);
                }
            }
            seen
        };
        let mut sorted = firsts.clone();
        sorted.sort_unstable();
        assert_eq!(
            firsts, sorted,
            "run {run}: steps out of Fig. 2 order: {numbers:?}"
        );

        // (c) and the entire trace is identical from run to run — the
        // protocol is deterministic given the same party seeds and input.
        let signature: Vec<(u8, String)> =
            steps.iter().map(|s| (s.number, s.what.clone())).collect();
        match &reference {
            None => reference = Some(signature),
            Some(expected) => {
                assert_eq!(
                    &signature, expected,
                    "run {run}: trace diverged between runs"
                )
            }
        }
    }
}

#[test]
fn table1_accuracy_identical_and_overhead_small() {
    // The headline reproduction: Table I's two rows agree on accuracy and
    // differ only marginally in runtime.
    let model = cached_tiny_conv(ModelKind::Fast);
    let eval = paper_test_subset(3);
    let table = run_table1(&model, &eval);

    assert_eq!(
        table.native.accuracy, table.omg.accuracy,
        "OMG protection must not change a single prediction"
    );
    // Wide band: the test harness runs suites in parallel, which perturbs
    // wall-clock measurements; the tight comparison lives in the bench
    // harness, which runs alone.
    let ratio = table.omg.runtime.as_secs_f64() / table.native.runtime.as_secs_f64();
    assert!(
        (0.4..2.5).contains(&ratio),
        "runtime ratio {ratio} outside the plausible overhead band"
    );
    // Real-time factor well below real time, like the paper's 0.004x.
    assert!(
        table.real_time_factor < 0.2,
        "rtf {}",
        table.real_time_factor
    );
    // Model size in the paper's ballpark ("about 49 kB").
    assert!(
        (40_000..80_000).contains(&table.model_bytes),
        "model bytes {}",
        table.model_bytes
    );
}

#[test]
fn repeated_queries_amortize_phases() {
    let model = cached_tiny_conv(ModelKind::Fast);
    let mut device = OmgDevice::new(1).unwrap();
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model, expected_enclave_measurement());
    let clock = device.clock();

    device.prepare(&mut user, &mut vendor).unwrap();
    device.initialize(&mut vendor).unwrap();
    let phases = clock.now();

    let eval = paper_test_subset(1);
    let start = clock.now();
    for u in &eval.utterances {
        device.classify_utterance(u).unwrap();
    }
    let per_query = (clock.now() - start) / eval.len() as u32;

    // One-time phases cost more than a single query, but after a session of
    // queries they are amortized — the paper's operation-phase argument.
    assert!(
        phases > per_query,
        "phases {phases:?} vs per-query {per_query:?}"
    );
}

#[test]
fn park_and_resume_across_queries_preserves_results() {
    let model = cached_tiny_conv(ModelKind::Fast);
    let mut device = OmgDevice::new(1).unwrap();
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model, expected_enclave_measurement());
    device.prepare(&mut user, &mut vendor).unwrap();
    device.initialize(&mut vendor).unwrap();

    let eval = paper_test_subset(1);
    let mut resident_results = Vec::new();
    for u in eval.utterances.iter().take(5) {
        resident_results.push(device.classify_utterance(u).unwrap().class_index);
    }

    device.set_park_between_queries(true);
    let mut parked_results = Vec::new();
    for u in eval.utterances.iter().take(5) {
        parked_results.push(device.classify_utterance(u).unwrap().class_index);
    }
    assert_eq!(resident_results, parked_results);
}
