//! Integration tests for the security guarantees of paper §IV: privacy of
//! client data, secrecy of the provided model, integrity of the processing
//! algorithm — each checked as an executable property against the full
//! stack.

use omg_bench::{cached_tiny_conv, ModelKind};
use omg_core::device::{expected_enclave_measurement, omg_enclave_image};
use omg_core::{OmgDevice, OmgError, User, Vendor};
use omg_hal::cpu::CoreId;
use omg_hal::memory::Agent;
use omg_hal::HalError;

fn protected_device() -> (OmgDevice, User, Vendor) {
    let model = cached_tiny_conv(ModelKind::Fast);
    let mut device = OmgDevice::new(1).unwrap();
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model, expected_enclave_measurement());
    device.prepare(&mut user, &mut vendor).unwrap();
    device.initialize(&mut vendor).unwrap();
    (device, user, vendor)
}

#[test]
fn model_secrecy_in_storage_and_memory() {
    let (mut device, _user, vendor) = protected_device();
    let plaintext = omg_nn::format::serialize(vendor.model());

    // Secrecy at rest: no window of the plaintext model in storage. Same
    // every-window property as a nested scan, but via a hash set of the
    // plaintext windows — O(n) instead of the O(n·m) that used to dominate
    // this suite's runtime (~40 s in debug builds).
    let plaintext_windows: std::collections::HashSet<&[u8]> = plaintext.windows(24).collect();
    let view = device.storage().attacker_view();
    assert!(
        !view.windows(24).any(|w| plaintext_windows.contains(w)),
        "plaintext model leaked into untrusted storage"
    );

    // Secrecy in memory: every normal-world read of the enclave faults.
    let region = device.enclave().unwrap().region();
    let mut buf = [0u8; 32];
    for offset in [0u64, 4096, 65_536, 524_288] {
        let attempt = device.platform_mut().read_at(
            Agent::NormalWorld { core: CoreId(0) },
            region,
            offset,
            &mut buf,
        );
        assert!(
            matches!(attempt, Err(HalError::AccessFault { .. })),
            "normal world read enclave memory at offset {offset}"
        );
    }
}

#[test]
fn input_privacy_microphone_unreachable_from_normal_world() {
    let (mut device, _user, _vendor) = protected_device();
    device
        .platform_mut()
        .microphone_mut()
        .push_recording(&[1234i16; 16_000]);

    // Any normal-world core: denied.
    for core in 0..8 {
        let attempt = device
            .platform_mut()
            .read_microphone(Agent::NormalWorld { core: CoreId(core) }, 100);
        assert!(attempt.is_err(), "core {core} read the secure microphone");
    }
    // Even the SA itself cannot touch the device directly — only the
    // secure-world proxy path works.
    let sa_core = device.enclave().unwrap().core();
    assert!(device
        .platform_mut()
        .read_microphone(Agent::SanctuaryApp { core: sa_core }, 100)
        .is_err());
}

#[test]
fn algorithm_integrity_any_runtime_bitflip_is_caught() {
    let model = cached_tiny_conv(ModelKind::Fast);
    // Flip a pseudo-random selection of single bits across the image; every
    // variant must fail vendor attestation. A failed preparation returns
    // the device to the fresh phase, so one device (and one RSA key
    // hierarchy) serves all eight attempts instead of paying device setup
    // per flipped bit.
    let image = omg_enclave_image();
    let mut device = OmgDevice::new(10).unwrap();
    let mut user = User::new(100);
    let mut vendor = Vendor::new(200, "kws", model, expected_enclave_measurement());
    for k in 0..8u64 {
        let mut tampered = image.clone();
        let byte = (k as usize * 977) % tampered.len();
        let bit = (k % 8) as u8;
        tampered[byte] ^= 1 << bit;

        let result = device.prepare_with_image(&mut user, &mut vendor, tampered);
        assert!(
            matches!(result, Err(OmgError::Sanctuary(_))),
            "bit flip at byte {byte} bit {bit} was not caught"
        );
        assert_eq!(
            device.phase(),
            omg_core::device::DevicePhase::Fresh,
            "failed attestation must leave the device fresh"
        );
    }
    // The same device still accepts the genuine image afterwards.
    device.prepare(&mut user, &mut vendor).unwrap();
}

#[test]
fn teardown_leaves_no_secrets_behind() {
    let (mut device, _user, _vendor) = protected_device();
    let region = device.enclave().unwrap().region();
    let core = device.enclave().unwrap().core();

    device.teardown().unwrap();

    // Memory released (scrubbed first — the scrub is asserted inside the
    // sanctuary crate; here the handle must be gone entirely).
    assert!(device.platform().read_region_trusted(region).is_err());
    // No L1 residue on the returned core.
    assert_eq!(
        device.platform().core(core).unwrap().l1().resident_lines(),
        0
    );
    // Core back with the OS.
    assert_eq!(
        device.platform().core(core).unwrap().state(),
        omg_hal::cpu::CoreState::Online
    );
}

#[test]
fn cache_side_channel_closed_by_l2_exclusion() {
    // The shared L2 holds lines from the *public* preparation traffic (the
    // OS loading the open-source enclave image). The side-channel question
    // is whether *enclave* accesses — whose addresses encode secrets — add
    // observable lines.
    let (mut device, _user, _vendor) = protected_device();
    let enclave_region = device.enclave().unwrap().region();
    let sa = Agent::SanctuaryApp {
        core: device.enclave().unwrap().core(),
    };

    // With exclusion on (the paper's design): enclave writes leave no new
    // residue for the attacker to probe.
    let before = device.platform().l2().resident_lines();
    device
        .platform_mut()
        .write_at(sa, enclave_region, 900_000, &[1u8; 256])
        .unwrap();
    assert_eq!(
        device.platform().l2().resident_lines(),
        before,
        "enclave traffic leaked into the shared L2"
    );

    // Ablation: with exclusion off, the same access is observable.
    device.platform_mut().l2_mut().set_exclusion(false);
    device
        .platform_mut()
        .write_at(sa, enclave_region, 950_000, &[1u8; 256])
        .unwrap();
    assert!(
        device.platform().l2().resident_lines() > before,
        "with exclusion off the probe should see residue"
    );
}

#[test]
fn user_cannot_be_tricked_by_wrong_device() {
    // A report from a different device (different platform CA) must not
    // convince the user, even with the correct measurement.
    let model = cached_tiny_conv(ModelKind::Fast);
    let mut honest_device = OmgDevice::new(1).unwrap();
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model, expected_enclave_measurement());
    honest_device.prepare(&mut user, &mut vendor).unwrap();

    let other_device = OmgDevice::new(99).unwrap();
    let report = omg_sanctuary::attest::AttestationReport::generate(
        honest_device.enclave().unwrap().identity().unwrap(),
        &user.new_challenge(),
    )
    .unwrap();
    // Verifying against the WRONG device's CA fails.
    assert!(user
        .verify_attestation(
            other_device.platform_ca(),
            &expected_enclave_measurement(),
            &report
        )
        .is_err());
}
