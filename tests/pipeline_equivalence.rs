//! Integration tests for numerical equivalence across execution contexts:
//! the same model must produce bit-identical results natively, inside the
//! enclave, and after serialization round trips — the mechanism behind
//! Table I's identical accuracy columns.

use omg_bench::{cached_tiny_conv, paper_test_subset, ModelKind};
use omg_core::device::expected_enclave_measurement;
use omg_core::{NativeSpotter, OmgDevice, User, Vendor};
use omg_hal::clock::SimClock;

#[test]
fn native_and_enclave_predictions_are_bit_identical() {
    let model = cached_tiny_conv(ModelKind::Fast);
    let eval = paper_test_subset(3);

    let mut native = NativeSpotter::new(model.clone()).unwrap();
    let clock = SimClock::default();

    let mut device = OmgDevice::new(1).unwrap();
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model, expected_enclave_measurement());
    device.prepare(&mut user, &mut vendor).unwrap();
    device.initialize(&mut vendor).unwrap();

    for (u, fp) in eval.utterances.iter().zip(eval.fingerprints.iter()) {
        let n1 = native.classify_utterance(&clock, u).unwrap();
        let n2 = native.classify_fingerprint(&clock, fp).unwrap();
        let o = device.classify_utterance(u).unwrap();
        assert_eq!(n1.class_index, o.class_index);
        assert_eq!(
            n1.class_index, n2.class_index,
            "frontend must be deterministic"
        );
        assert_eq!(n1.label, o.label);
        // Scores (dequantized softmax) agree exactly: same integer path.
        assert_eq!(n1.score, o.score);
    }
}

#[test]
fn serialization_roundtrip_preserves_predictions() {
    let model = cached_tiny_conv(ModelKind::Fast);
    let blob = omg_nn::format::serialize(&model);
    let restored = omg_nn::format::deserialize(&blob).unwrap();
    assert_eq!(restored, model);

    let eval = paper_test_subset(2);
    let clock = SimClock::default();
    let mut a = NativeSpotter::new(model).unwrap();
    let mut b = NativeSpotter::new(restored).unwrap();
    for fp in &eval.fingerprints {
        let ta = a.classify_fingerprint(&clock, fp).unwrap();
        let tb = b.classify_fingerprint(&clock, fp).unwrap();
        assert_eq!(ta.class_index, tb.class_index);
        assert_eq!(ta.score, tb.score);
    }
}

#[test]
fn encryption_decryption_cycle_preserves_model_bytes() {
    // The full vendor -> storage -> enclave path must hand the interpreter
    // exactly the bytes the vendor serialized.
    let model = cached_tiny_conv(ModelKind::Fast);
    let plaintext = omg_nn::format::serialize(&model);

    let mut device = OmgDevice::new(1).unwrap();
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model, expected_enclave_measurement());
    device.prepare(&mut user, &mut vendor).unwrap();
    device.initialize(&mut vendor).unwrap();

    // The decrypted model sits in enclave memory at the heap base.
    let enclave = device.enclave().unwrap();
    let contents = device
        .platform()
        .read_region_trusted(enclave.region())
        .unwrap();
    let heap = enclave.heap_base() as usize;
    assert_eq!(
        &contents[heap..heap + plaintext.len()],
        plaintext.as_slice()
    );
}

#[test]
fn secure_smpc_inference_agrees_with_plaintext_argmax() {
    // Cross-check between the baseline crate and the nn crate on the real
    // trained model: the 2PC integer pipeline must reproduce the plaintext
    // integer argmax.
    use omg_baselines::inference::{argmax, SecureTinyConv};
    use omg_baselines::smpc::TwoPartyEngine;

    let model = cached_tiny_conv(ModelKind::Fast);
    let secure = SecureTinyConv::from_model(&model).unwrap();
    let eval = paper_test_subset(1);

    let mut engine = TwoPartyEngine::new(5);
    let fp = &eval.fingerprints[0];
    let (secure_logits, ledger) = secure.infer_secure(&mut engine, fp).unwrap();
    let plain_logits = secure.infer_plaintext(fp).unwrap();
    assert_eq!(secure_logits, plain_logits);
    assert_eq!(argmax(&secure_logits), argmax(&plain_logits));
    // And it must have actually paid the SMPC price.
    assert_eq!(ledger.triples_used, secure.multiplication_count());
    assert!(
        ledger.online_bytes > 10_000_000,
        "bytes: {}",
        ledger.online_bytes
    );
}

#[test]
fn frontend_is_identical_inside_and_outside_the_enclave() {
    // The fingerprint computed natively equals the one computed in the
    // enclave context (same code, same fixed-point arithmetic).
    use omg_speech::frontend::FeatureExtractor;
    let eval = paper_test_subset(1);
    let fe1 = FeatureExtractor::new().unwrap();
    let fe2 = FeatureExtractor::new().unwrap();
    for u in eval.utterances.iter().take(3) {
        assert_eq!(fe1.fingerprint(u).unwrap(), fe2.fingerprint(u).unwrap());
    }
}
