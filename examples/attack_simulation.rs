//! The adversary model of paper §IV, exercised end to end: "the adversary
//! has full control over the software running in the normal world of the
//! user's device, including privileged software like the commodity OS."
//!
//! Every attack below is attempted for real against the simulated platform
//! and shown to fail (or to yield only ciphertext).
//!
//! Run with: `cargo run --release -p omg-bench --example attack_simulation`

use omg_bench::{cached_tiny_conv, ModelKind};
use omg_core::device::{expected_enclave_measurement, omg_enclave_image};
use omg_core::{OmgDevice, OmgError, User, Vendor};
use omg_hal::cpu::CoreId;
use omg_hal::memory::Agent;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = cached_tiny_conv(ModelKind::Fast);
    let plaintext_model = omg_nn::format::serialize(&model);

    println!("=== OMG attack surface walkthrough (paper §IV threat model) ===\n");

    // Attack 1: tamper with the enclave runtime before it is loaded.
    {
        let mut device = OmgDevice::new(1)?;
        let mut user = User::new(2);
        let mut vendor = Vendor::new(3, "kws", model.clone(), expected_enclave_measurement());
        let mut evil_image = omg_enclave_image();
        evil_image[0] ^= 0xFF; // backdoored runtime
        match device.prepare_with_image(&mut user, &mut vendor, evil_image) {
            Err(OmgError::Sanctuary(e)) => {
                println!(
                    "[attack 1] backdoored enclave runtime -> attestation fails:\n            {e}"
                )
            }
            other => panic!("expected attestation failure, got {other:?}"),
        }
    }

    // Attacks 2-5 run against an honestly prepared device.
    let mut device = OmgDevice::new(1)?;
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model.clone(), expected_enclave_measurement());
    device.prepare(&mut user, &mut vendor)?;
    device.initialize(&mut vendor)?;

    // Attack 2: steal the model from local storage.
    {
        let view = device.storage().attacker_view();
        let leaked = view
            .windows(16)
            .any(|w| plaintext_model.windows(16).any(|p| p == w));
        println!(
            "\n[attack 2] dump local storage -> {} bytes of ciphertext, \
             0 plaintext model windows found ({})",
            view.len(),
            if leaked { "LEAK!" } else { "ok" }
        );
        assert!(!leaked);
    }

    // Attack 3: read the decrypted model out of enclave memory.
    {
        let region = device.enclave().unwrap().region();
        let heap = device.enclave().unwrap().heap_base();
        let mut buf = [0u8; 64];
        let attempt = device.platform_mut().read_at(
            Agent::NormalWorld { core: CoreId(0) },
            region,
            heap,
            &mut buf,
        );
        println!(
            "[attack 3] OS reads enclave heap -> {}",
            attempt.unwrap_err()
        );
    }

    // Attack 4: DMA into the enclave from a malicious device.
    {
        let region = device.enclave().unwrap().region();
        let mut buf = [0u8; 64];
        let attempt = device.platform_mut().read_at(
            Agent::Dma {
                device: "malicious-gpu",
            },
            region,
            0,
            &mut buf,
        );
        println!(
            "[attack 4] DMA device reads enclave -> {}",
            attempt.unwrap_err()
        );
    }

    // Attack 5: probe the shared L2 cache for enclave access patterns.
    {
        let region = device.enclave().unwrap().region();
        let sa = Agent::SanctuaryApp {
            core: device.enclave().unwrap().core(),
        };
        let before = device.platform().l2().resident_lines();
        // The enclave touches secret-dependent addresses...
        device
            .platform_mut()
            .write_at(sa, region, 900_000, &[1u8; 512])?;
        let after = device.platform().l2().resident_lines();
        println!(
            "[attack 5] probe shared L2 after enclave accesses -> {} new lines \
             observable (L2 exclusion active)",
            after - before
        );
        assert_eq!(after, before);
    }

    // Attack 6: replay an old model after an update (rollback).
    {
        let old_package = device.storage().load("kws").unwrap().clone();
        vendor.update_model(model.clone());
        device.update_model(&mut vendor)?;
        device.storage_mut().store(old_package);
        match device.initialize(&mut vendor) {
            Err(OmgError::RollbackDetected) => {
                println!("[attack 6] rollback to old model package -> detected and rejected")
            }
            other => panic!("expected rollback detection, got {other:?}"),
        }
    }

    println!("\nall attacks defeated; user data and vendor model remain protected.");
    Ok(())
}
