//! Continuous keyword spotting over an audio stream — the paper's §VI
//! outlook ("more complex end-to-end systems") built from the existing
//! pieces: sliding windows + the OMG-protected classifier + detection
//! smoothing.
//!
//! Run with: `cargo run --release -p omg-bench --example streaming_detection`

use omg_bench::{cached_tiny_conv, ModelKind};
use omg_core::device::expected_enclave_measurement;
use omg_core::{OmgDevice, User, Vendor};
use omg_speech::dataset::{SyntheticSpeechCommands, LABELS};
use omg_speech::streaming::{DetectionSmoother, SmootherConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a 12-second stream: silence with three commands embedded.
    let data = SyntheticSpeechCommands::new(21);
    let mut stream = Vec::new();
    let silence = || data.utterance(0, 0).unwrap();
    let word = |label: &str, take: u64| {
        let class = LABELS.iter().position(|&l| l == label).unwrap();
        data.utterance(class, take).unwrap()
    };
    for (second, chunk) in [
        silence(),
        silence(),
        word("on", 1),
        silence(),
        silence(),
        word("stop", 2),
        silence(),
        silence(),
        word("right", 3),
        silence(),
        silence(),
        silence(),
    ]
    .into_iter()
    .enumerate()
    {
        println!(
            "stream t={second:>2} s: {}",
            if second % 3 == 2 && second < 9 {
                "<command>"
            } else {
                "(background)"
            }
        );
        stream.extend(chunk);
    }

    // The protected classifier.
    let model = cached_tiny_conv(ModelKind::Paper);
    let mut device = OmgDevice::new(1)?;
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model, expected_enclave_measurement());
    device.prepare(&mut user, &mut vendor)?;
    device.initialize(&mut vendor)?;

    // Slide a 1-second window every 250 ms through a warm session (one
    // enclave resume for the whole stream, no per-window allocation) and
    // smooth the votes.
    let mut smoother = DetectionSmoother::new(SmootherConfig {
        min_score: 0.25,
        ..SmootherConfig::default()
    });
    const HOP_SAMPLES: usize = 4_000; // 250 ms at 16 kHz
    println!("\nscanning with 1 s window, 250 ms hop (warm session):");
    let mut session = device.session()?;
    let detections = session.classify_stream(&stream, HOP_SAMPLES, &mut smoother)?;
    let windows = session.queries();
    session.finish()?;
    for d in &detections {
        let start_secs = (d.window_index * HOP_SAMPLES) as f32 / 16_000.0;
        println!(
            "  t={start_secs:>5.2} s  DETECTED \"{}\" (score {:.2})",
            LABELS[d.class], d.score
        );
    }
    println!(
        "\n{} detections over {} windows / {:.0} s of audio; total virtual compute {:.0} ms",
        detections.len(),
        windows,
        stream.len() as f32 / 16_000.0,
        device.clock().measured().as_secs_f64() * 1e3,
    );
    Ok(())
}
