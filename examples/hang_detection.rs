//! Hang detection & preemption: the liveness watchdog turns a wedged
//! worker into a retryable error instead of a stuck caller.
//!
//! Provisions a two-worker fleet with a [`RestartPolicy`] *and* a
//! [`HangPolicy`] installed, wedges one worker mid-compute with an
//! injected stall that never returns, and watches the watchdog declare
//! the hang (bounded by `lease_ttl + grace + scan_interval`), resolve the
//! victim's ticket with the retryable `ServeError::Hung`, and
//! re-provision the slot. The wedged thread is then woken as a zombie and
//! publishes nothing but a discard tick — the accounting identity holds
//! to the end. Prints the health transitions and the recovery tally.
//!
//! Run with: `cargo run --release --example hang_detection`

use std::sync::Arc;
use std::time::{Duration, Instant};

use omg::bench::{cached_tiny_conv, paper_test_subset, ModelKind};
use omg::serve::fault::{FaultPlan, QueryFault};
use omg::serve::{
    FleetHealth, HangPolicy, RestartPolicy, RetryPolicy, ServeConfig, ServeError, ServeHandle,
    WorkerHealth,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = cached_tiny_conv(ModelKind::Fast);
    let eval = paper_test_subset(1);

    // The chaos seam: the first admitted query wedges its worker forever
    // (until this example wakes the zombie at the end) — the same
    // injection the chaos harness and hang_recovery bench use.
    let plan = Arc::new(FaultPlan::new());
    plan.fault_query(0, QueryFault::Hang);

    let hang = HangPolicy {
        lease_ttl: Duration::from_millis(100),
        grace: Duration::from_millis(100),
        max_hangs: 4,
        scan_interval: Duration::from_millis(10),
    };
    let bound = hang.lease_ttl + hang.grace + hang.scan_interval;
    let handle = ServeHandle::provision(
        2,
        ServeConfig {
            queue_capacity: 16,
            faults: Some(Arc::clone(&plan)),
            restart: Some(RestartPolicy {
                backoff_initial: Duration::from_millis(5),
                backoff_max: Duration::from_millis(100),
                max_restarts: 16,
                crash_loop_threshold: 3,
                stable_after: Duration::from_secs(1),
            }),
            hang: Some(hang),
            ..ServeConfig::default()
        },
        "kws",
        model,
        42,
    )?;
    println!(
        "fleet up: {} workers, watchdog on (detection bound {:.0} ms), health {:?}",
        handle.workers(),
        bound.as_secs_f64() * 1e3,
        handle.health()
    );

    // The doomed query: its worker stops renewing the heartbeat lease, so
    // the waiter gets the watchdog's verdict instead of hanging forever.
    let submitted_at = Instant::now();
    let doomed = handle.submit(&eval.utterances[0])?;
    let verdict = doomed.wait();
    println!(
        "wedged query preempted in {:.1} ms: {verdict:?} (retryable: {})",
        submitted_at.elapsed().as_secs_f64() * 1e3,
        matches!(&verdict, Err(e) if e.is_retryable()),
    );
    assert_eq!(verdict, Err(ServeError::Hung));

    // Ride out the preemption with the caller-side retry layer — the same
    // query, resubmitted, lands on a live worker.
    let retry = RetryPolicy::default();
    let t = handle.submit_with_retry(&eval.utterances[0], &retry)?;
    println!("retried query served: label {:?}", t.label);

    // Wait for the supervisor to finish re-provisioning the slot. The
    // restart count is checked first: it is incremented while the slot
    // still reads Restarting, so all-Live alone could race ahead of the
    // preemption it is waiting out.
    let start = Instant::now();
    while handle.stats().restarts < 1
        || handle
            .worker_health()
            .iter()
            .any(|h| *h != WorkerHealth::Live)
    {
        assert!(start.elapsed() < Duration::from_secs(10), "no recovery");
        std::thread::sleep(Duration::from_millis(1));
    }
    println!(
        "re-provisioned: health {:?}, slots {:?}",
        handle.health(),
        handle.worker_health()
    );
    assert_eq!(handle.health(), FleetHealth::Healthy);

    // Serve a stream on the restored fleet.
    for utterance in eval.utterances.iter().cycle().take(16) {
        let t = handle.submit_with_retry(utterance, &retry)?;
        assert!(!t.label.is_empty());
    }

    // Release the wedged zombie: it wakes, serves its long-preempted
    // query, loses the fill race against the verdict the waiter already
    // consumed, and publishes nothing but the zombie-discard count.
    plan.wake_hung();
    let start = Instant::now();
    while handle.stats().zombie_discards < 1 {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "zombie never woke"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    println!("zombie woke and published nothing but a discard tick");

    println!("\nstats: {}", handle.stats());

    let drained = handle.drain();
    assert!(drained.is_healthy(), "{:?}", drained.worker_errors);
    let s = &drained.stats;
    assert_eq!(
        s.completed + s.rejected + s.failed + s.shed + s.discarded,
        s.submitted,
        "identity violated: {s}"
    );
    println!(
        "drained: {} hung / {} restarts / {} zombie discards, {} devices back \
         (full capacity), accounting identity holds",
        s.hung,
        s.restarts,
        s.zombie_discards,
        drained.devices.len(),
    );
    Ok(())
}
