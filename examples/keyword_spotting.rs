//! The paper's evaluation scenario (§VI): offline keyword recognition over
//! the 12-class Speech Commands problem, with per-class results.
//!
//! Runs the test subset through the OMG-protected pipeline and prints a
//! per-keyword breakdown plus the Table I summary line.
//!
//! Run with: `cargo run --release -p omg-bench --example keyword_spotting`

use omg_bench::{cached_tiny_conv, paper_test_subset, run_table1, ModelKind};
use omg_speech::dataset::LABELS;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = cached_tiny_conv(ModelKind::Fast);
    let eval = paper_test_subset(5);
    println!(
        "evaluating {} utterances (5 per keyword) with and without OMG...\n",
        eval.len()
    );

    // Per-class accuracy under OMG protection.
    let mut device = omg_core::OmgDevice::new(1)?;
    let mut user = omg_core::User::new(2);
    let mut vendor = omg_core::Vendor::new(
        3,
        "kws",
        model.clone(),
        omg_core::device::expected_enclave_measurement(),
    );
    device.prepare(&mut user, &mut vendor)?;
    device.initialize(&mut vendor)?;

    let mut per_class: Vec<(usize, usize)> = vec![(0, 0); 12]; // (correct, total)
    for (u, &label) in eval.utterances.iter().zip(eval.labels.iter()) {
        let t = device.classify_utterance(u)?;
        per_class[label].1 += 1;
        if t.class_index == label {
            per_class[label].0 += 1;
        }
    }
    println!("{:<10} {:>8}", "keyword", "accuracy");
    println!("{:-<10} {:->8}", "", "");
    for (class, &(correct, total)) in per_class.iter().enumerate() {
        if total > 0 {
            println!(
                "{:<10} {:>6.0} %",
                LABELS[class],
                correct as f64 / total as f64 * 100.0
            );
        }
    }

    // The Table I summary on the same eval set.
    println!();
    let table = run_table1(&model, &eval);
    println!("{}", omg_bench::format_table1(&table));
    Ok(())
}
