//! Deterministic fleet chaos: the `omg-sim` scenario catalog, end to end.
//!
//! Runs every catalog scenario — worker panic mid-query, device crash,
//! last-worker failover with a loaded queue, saturation bursts, scripted
//! stalls, zero-budget sheds, tampered provisioning — against a real
//! enclave fleet, prints each run's deterministic event trace and final
//! accounting, and checks the full invariant suite after every run.
//!
//! Same seed ⇒ byte-identical traces; pass one as the first argument to
//! replay a specific run (default 42).
//!
//! Run with: `cargo run --release --example scenarios [seed]`

use omg::sim::catalog;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(42);

    for scenario in catalog::all() {
        let report = scenario.run(seed);
        println!("=== {} (seed {seed}) ===", report.name);
        for line in &report.trace {
            println!("  {line}");
        }
        if report.is_clean() {
            println!("  invariants: all hold\n");
        } else {
            println!("  INVARIANT VIOLATIONS:");
            for v in &report.violations {
                println!("    - {v}");
            }
            println!("  reproduce with: {}\n", report.reproducer());
            std::process::exit(1);
        }
    }
    println!("catalog clean: every scenario replayable with seed {seed}");
}
