//! The secure peripheral path (paper §III-B and Fig. 2 step ⑦): TrustZone
//! assigns the microphone to the secure world, so voice samples reach the
//! enclave without ever being visible to the commodity OS.
//!
//! Run with: `cargo run --release -p omg-bench --example secure_microphone`

use omg_bench::{cached_tiny_conv, ModelKind};
use omg_core::device::expected_enclave_measurement;
use omg_core::{OmgDevice, User, Vendor};
use omg_hal::cpu::CoreId;
use omg_hal::memory::Agent;
use omg_speech::dataset::SyntheticSpeechCommands;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = cached_tiny_conv(ModelKind::Fast);
    let mut device = OmgDevice::new(1)?;
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model, expected_enclave_measurement());

    println!(
        "microphone assignment at power-on: {:?}",
        device.platform().microphone_assignment()
    );
    device.prepare(&mut user, &mut vendor)?;
    device.initialize(&mut vendor)?;
    println!(
        "microphone assignment after OMG preparation: {:?}\n",
        device.platform().microphone_assignment()
    );

    // The user speaks.
    let data = SyntheticSpeechCommands::new(11);
    let samples = data.utterance(10, 0)?; // "stop"
    device
        .platform_mut()
        .microphone_mut()
        .push_recording(&samples);

    // The malicious commodity OS tries to grab the samples first.
    let os = Agent::NormalWorld { core: CoreId(0) };
    match device.platform_mut().read_microphone(os, 16_000) {
        Err(e) => println!("[attacker] commodity OS tries to read the mic -> {e}"),
        Ok(_) => panic!("the OS must not be able to read a secure-world mic"),
    }

    // The OS also cannot reassign the device to itself.
    match device
        .platform_mut()
        .assign_microphone(os, omg_hal::periph::PeriphAssignment::NormalWorld)
    {
        Err(e) => println!("[attacker] commodity OS tries to reprogram the TZPC -> {e}"),
        Ok(()) => panic!("the OS must not control peripheral assignment"),
    }

    // The enclave reads through the secure-world proxy (2 world switches).
    let switches_before = device.clock().world_switch_count();
    let result = device.process_from_microphone(&mut user)?;
    println!(
        "\n[enclave] secure mic read + inference -> \"{}\" \
         ({} world switches, paper/[11]: 0.3 ms round trip)",
        result.label,
        device.clock().world_switch_count() - switches_before
    );
    println!("[user] transcription received: {:?}", user.transcriptions());
    Ok(())
}
