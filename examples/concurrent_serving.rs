//! Concurrent serving: an `omg-serve` fleet behind one submission handle.
//!
//! Provisions four enclave devices (full preparation + initialization
//! against one vendor), serves a burst of queries from two submitter
//! threads through the bounded admission queue, prints throughput and
//! latency percentiles, then drains gracefully and shows that every
//! worker's enclave arena was scrubbed.
//!
//! Run with: `cargo run --release --example concurrent_serving`

use std::sync::Arc;
use std::time::Duration;

use omg::bench::{cached_tiny_conv, paper_test_subset, ModelKind};
use omg::serve::{ServeConfig, ServeError, ServeHandle};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = cached_tiny_conv(ModelKind::Fast);
    let eval = paper_test_subset(1);

    // Four workers, a 32-slot admission queue, and a 250 ms latency SLO.
    let handle = Arc::new(ServeHandle::provision(
        4,
        ServeConfig {
            queue_capacity: 32,
            slo: Some(Duration::from_millis(250)),
            ..ServeConfig::default()
        },
        "kws",
        model,
        42,
    )?);
    println!("fleet up: {} workers, queue capacity 32", handle.workers());

    // Two submitter threads fire the evaluation subset at the fleet.
    let eval = Arc::new(eval);
    let submitters: Vec<_> = (0..2)
        .map(|s| {
            let handle = Arc::clone(&handle);
            let eval = Arc::clone(&eval);
            std::thread::spawn(move || {
                let mut ok = 0usize;
                let mut shed = 0usize;
                for (i, utterance) in eval.utterances.iter().enumerate() {
                    if i % 2 != s {
                        continue; // split the workload between submitters
                    }
                    match handle.submit(utterance) {
                        Ok(pending) => {
                            let t = pending.wait().expect("query");
                            assert!(!t.label.is_empty());
                            ok += 1;
                        }
                        Err(ServeError::Overloaded) => shed += 1, // backpressure
                        Err(e) => panic!("submit: {e}"),
                    }
                }
                (ok, shed)
            })
        })
        .collect();
    for (s, t) in submitters.into_iter().enumerate() {
        let (ok, shed) = t.join().expect("submitter");
        println!("submitter {s}: {ok} served, {shed} shed by backpressure");
    }

    println!("\nstats: {}", handle.stats());

    // The same numbers, through the metrics export layer.
    println!("\nmetrics excerpt (Prometheus text):");
    for line in handle
        .metrics_text()
        .lines()
        .filter(|l| !l.starts_with('#') && !l.contains("_bucket"))
        .take(8)
    {
        println!("  {line}");
    }

    // Graceful drain: in-flight queries finish, arenas are scrubbed, the
    // devices come back for inspection.
    let handle = Arc::try_unwrap(handle).expect("submitters joined");
    let drained = handle.drain();
    assert!(
        drained.is_healthy(),
        "worker errors: {:?}",
        drained.worker_errors
    );
    println!(
        "drained: {} queries over {} workers {:?}",
        drained.stats.completed, drained.stats.workers, drained.served_per_worker
    );
    for (i, device) in drained.devices.iter().enumerate() {
        println!(
            "worker {i}: arena scrubbed = {:?}, virtual device time {:.1} ms",
            device.interpreter_arena_scrubbed(),
            device.clock().now().as_secs_f64() * 1e3
        );
        assert_eq!(device.interpreter_arena_scrubbed(), Some(true));
    }
    Ok(())
}
