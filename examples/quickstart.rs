//! Quickstart: the complete OMG protocol in ~40 lines.
//!
//! Trains a small keyword-spotting model (cached after the first run),
//! walks through preparation → initialization → operation, and prints the
//! transcription of one spoken command.
//!
//! Run with: `cargo run --release -p omg-bench --example quickstart`

use omg_bench::{cached_tiny_conv, ModelKind};
use omg_core::device::expected_enclave_measurement;
use omg_core::{OmgDevice, User, Vendor};
use omg_speech::dataset::{SyntheticSpeechCommands, LABELS};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The vendor owns a trained tiny_conv model (its intellectual property).
    let model = cached_tiny_conv(ModelKind::Fast);
    let mut vendor = Vendor::new(3, "kws-tiny-conv", model, expected_enclave_measurement());

    // The user owns an (simulated) ARM HiKey 960 device.
    let mut device = OmgDevice::new(1)?;
    let mut user = User::new(2);

    // Phase I: load + attest the enclave, receive the encrypted model.
    device.prepare(&mut user, &mut vendor)?;
    println!(
        "phase I  done: encrypted model in untrusted storage ({} bytes)",
        device
            .storage()
            .load("kws-tiny-conv")
            .map(|p| p.ciphertext.len())
            .unwrap_or(0)
    );

    // Phase II: vendor releases K_U; the enclave decrypts the model.
    device.initialize(&mut vendor)?;
    println!("phase II done: model decrypted inside TZASC-locked memory");

    // Phase III: speak "yes" into the secure microphone and classify it.
    let data = SyntheticSpeechCommands::new(42);
    let yes_class = LABELS.iter().position(|&l| l == "yes").unwrap();
    let utterance = data.utterance(yes_class, 7)?;
    device
        .platform_mut()
        .microphone_mut()
        .push_recording(&utterance);

    let result = device.process_from_microphone(&mut user)?;
    println!(
        "phase III: heard \"{}\" (p = {:.2}, {} µs of enclave compute)",
        result.label,
        result.score,
        result.compute.as_micros()
    );
    println!(
        "\ntotal virtual device time: {:.2} ms, {} world switches",
        device.clock().now().as_secs_f64() * 1e3,
        device.clock().world_switch_count()
    );
    Ok(())
}
