//! Speaker verification on enclave-computed embeddings — one of the
//! extensions the paper names in §VI ("speaker verification, and emotion
//! recognition").
//!
//! Two synthetic speakers enroll by averaging utterance embeddings that the
//! OMG enclave computes from its convolution activations
//! (`OmgDevice::embed_utterance`); fresh takes are then verified by cosine
//! similarity against the enrolled centroids. The raw audio and the model
//! stay protected throughout — only embeddings leave the enclave.
//!
//! Run with: `cargo run --release -p omg-bench --example speaker_verification`

use omg_bench::{cached_tiny_conv, ModelKind};
use omg_core::device::expected_enclave_measurement;
use omg_core::{OmgDevice, User, Vendor};
use omg_speech::dataset::{SpeakerProfile, SyntheticSpeechCommands};

fn cosine(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn mean(vectors: &[Vec<f32>]) -> Vec<f32> {
    let mut out = vec![0f32; vectors[0].len()];
    for v in vectors {
        for (o, x) in out.iter_mut().zip(v) {
            *o += x;
        }
    }
    let norm = out.iter().map(|v| v * v).sum::<f32>().sqrt().max(1e-9);
    out.iter_mut().for_each(|v| *v /= norm);
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = cached_tiny_conv(ModelKind::Paper);
    let mut device = OmgDevice::new(1)?;
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model, expected_enclave_measurement());
    device.prepare(&mut user, &mut vendor)?;
    device.initialize(&mut vendor)?;

    // Two maximally distinct synthetic speakers.
    let (mut alice, mut bob) = (0u64, 0u64);
    for id in 0..300 {
        let p = SpeakerProfile::for_id(id);
        if p.pitch < SpeakerProfile::for_id(alice).pitch {
            alice = id;
        }
        if p.pitch > SpeakerProfile::for_id(bob).pitch {
            bob = id;
        }
    }
    println!(
        "alice: pitch {:.2} | bob: pitch {:.2}",
        SpeakerProfile::for_id(alice).pitch,
        SpeakerProfile::for_id(bob).pitch
    );

    let data = SyntheticSpeechCommands::new(13);
    let yes = 2usize; // both speakers say "yes"

    // Enrollment: 5 takes each, embedded inside the enclave.
    let mut embed = |speaker: u64, take: u64| -> Result<Vec<f32>, Box<dyn std::error::Error>> {
        let samples = data.utterance_with_speaker(yes, speaker, take)?;
        Ok(device.embed_utterance(&samples)?)
    };
    let alice_centroid = mean(
        &(0..5)
            .map(|t| embed(alice, t))
            .collect::<Result<Vec<_>, _>>()?,
    );
    let bob_centroid = mean(
        &(0..5)
            .map(|t| embed(bob, t))
            .collect::<Result<Vec<_>, _>>()?,
    );
    println!(
        "enrolled centroid similarity (alice·bob): {:.3}\n",
        cosine(&alice_centroid, &bob_centroid)
    );

    // Verification: 6 fresh takes per speaker.
    println!(
        "{:<20} {:>9} {:>9} {:>9}",
        "utterance", "sim(A)", "sim(B)", "verdict"
    );
    let mut correct = 0usize;
    let mut total = 0usize;
    for (name, speaker) in [("alice", alice), ("bob", bob)] {
        for take in 10..16u64 {
            let e = embed(speaker, take)?;
            let sim_a = cosine(&e, &alice_centroid);
            let sim_b = cosine(&e, &bob_centroid);
            let verdict = if sim_a > sim_b { "alice" } else { "bob" };
            total += 1;
            if verdict == name {
                correct += 1;
            }
            println!("{name:<14} take{take:<2} {sim_a:>9.3} {sim_b:>9.3} {verdict:>9}");
        }
    }
    println!("\nverification accuracy: {correct}/{total}");
    assert!(correct * 3 >= total * 2, "verification should beat 2/3");
    Ok(())
}
