//! Model licensing and rollback protection (paper §V, phase II):
//! "V can actively manage the access of U to the model by either sending or
//! not sending the symmetric key K_U."
//!
//! Demonstrates license revocation, reinstatement, a model update, and a
//! defeated rollback attack.
//!
//! Run with: `cargo run --release -p omg-bench --example model_licensing`

use omg_bench::{cached_tiny_conv, ModelKind};
use omg_core::device::expected_enclave_measurement;
use omg_core::{OmgDevice, OmgError, User, Vendor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = cached_tiny_conv(ModelKind::Fast);
    let mut device = OmgDevice::new(1)?;
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model.clone(), expected_enclave_measurement());

    device.prepare(&mut user, &mut vendor)?;
    let enclave_pk = device.enclave_public_key()?.clone();
    println!("[1] device prepared; encrypted model v1 stored locally");

    // --- license enforcement ------------------------------------------------
    vendor.revoke_license(&enclave_pk)?;
    match device.initialize(&mut vendor) {
        Err(OmgError::LicenseDenied { reason }) => {
            println!("[2] vendor withheld K_U -> initialization failed: {reason}");
        }
        other => panic!("expected license denial, got {other:?}"),
    }

    vendor.reinstate_license(&enclave_pk)?;
    device.initialize(&mut vendor)?;
    println!("[3] license reinstated -> model decrypts and loads");

    // --- model update + rollback attack --------------------------------------
    let v1_package = device.storage().load("kws").expect("package").clone();
    vendor.update_model(model);
    device.update_model(&mut vendor)?;
    println!(
        "[4] vendor shipped model v{}; device re-provisioned",
        device.model_version()
    );

    // The attacker (who controls storage) swaps the old v1 package back in,
    // hoping to keep using the outdated model.
    device.storage_mut().store(v1_package);
    match device.initialize(&mut vendor) {
        Err(OmgError::RollbackDetected) => {
            println!(
                "[5] rollback attack: stored v1 package fails authenticated \
                      decryption under the v2 key -> detected"
            );
        }
        other => panic!("expected rollback detection, got {other:?}"),
    }

    // Re-provision cleanly and continue.
    device.update_model(&mut vendor)?;
    device.initialize(&mut vendor)?;
    println!("[6] fresh v2 package restored -> device operational again");
    Ok(())
}
