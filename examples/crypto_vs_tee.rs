//! Why hardware, not cryptography (paper §I): a side-by-side of one
//! keyword-recognition inference under OMG, under Paillier homomorphic
//! encryption, and under Beaver-triple 2PC.
//!
//! This is the example-sized companion to the full
//! `baseline_comparison` report binary.
//!
//! Run with: `cargo run --release -p omg-bench --example crypto_vs_tee`

use omg_baselines::inference::{argmax, SecureTinyConv};
use omg_baselines::network::NetworkModel;
use omg_baselines::paillier::PaillierKeyPair;
use omg_baselines::smpc::TwoPartyEngine;
use omg_bench::{cached_tiny_conv, paper_test_subset, ModelKind};
use omg_core::device::expected_enclave_measurement;
use omg_core::{OmgDevice, User, Vendor};
use omg_crypto::rng::ChaChaRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = cached_tiny_conv(ModelKind::Fast);
    let eval = paper_test_subset(1);
    let utterance = &eval.utterances[0];
    let fingerprint = &eval.fingerprints[0];

    // --- TEE (OMG) ----------------------------------------------------------
    let mut device = OmgDevice::new(1)?;
    let mut user = User::new(2);
    let mut vendor = Vendor::new(3, "kws", model.clone(), expected_enclave_measurement());
    device.prepare(&mut user, &mut vendor)?;
    device.initialize(&mut vendor)?;
    let result = device.classify_utterance(utterance)?;
    println!(
        "OMG/TEE:  \"{}\" in {:.2} ms of enclave compute, 0 network bytes",
        result.label,
        result.compute.as_secs_f64() * 1e3
    );

    // --- SMPC ----------------------------------------------------------------
    let secure = SecureTinyConv::from_model(&model)?;
    let mut engine = TwoPartyEngine::new(7);
    let start = std::time::Instant::now();
    let (logits, ledger) = secure.infer_secure(&mut engine, fingerprint)?;
    let compute = start.elapsed();
    let lte = NetworkModel::mobile_lte();
    println!(
        "2PC:      class {} in {:.2} s compute + {:.2} s network \
         ({:.1} MiB online, {} rounds)",
        argmax(&logits),
        compute.as_secs_f64(),
        ledger.online_time(&lte).as_secs_f64(),
        ledger.online_bytes as f64 / (1 << 20) as f64,
        ledger.online_rounds
    );

    // --- HE (one real encrypted dot product, to see the per-op price) -------
    let mut rng = ChaChaRng::seed_from_u64(9);
    let keys = PaillierKeyPair::generate(&mut rng, 1024)?;
    let start = std::time::Instant::now();
    let row: Vec<i64> = (0..80).map(|i| (i % 7) - 3).collect();
    let input: Vec<i64> = fingerprint.iter().take(80).map(|&q| i64::from(q)).collect();
    let out = omg_baselines::he::encrypted_linear_layer(
        &mut rng,
        &keys,
        std::slice::from_ref(&row),
        &[0],
        &input,
    )?;
    let one_neuron = start.elapsed();
    let plain: i64 = row.iter().zip(&input).map(|(w, x)| w * x).sum();
    assert_eq!(out[0], plain);
    println!(
        "HE:       ONE conv neuron (80 MACs) took {:.2} s under Paillier-1024; \
         the full network has 4,412 neurons (~{:.0} s projected)",
        one_neuron.as_secs_f64(),
        one_neuron.as_secs_f64() * 4412.0
    );

    println!("\nconclusion (paper §I): only the TEE meets mobile latency budgets offline.");
    Ok(())
}
