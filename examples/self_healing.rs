//! Self-healing serving: a supervised fleet rides out a worker death.
//!
//! Provisions a two-worker fleet with a [`RestartPolicy`] installed, kills
//! one worker mid-run with an injected panic, and watches the supervisor
//! re-provision a replacement device through the shared model cache and
//! restart the slot. Meanwhile the caller rides out the death with
//! `submit_with_retry`, so the kill never becomes a caller-visible
//! failure. Prints the fleet health transitions and the recovery tally.
//!
//! Run with: `cargo run --release --example self_healing`

use std::sync::Arc;
use std::time::{Duration, Instant};

use omg::bench::{cached_tiny_conv, paper_test_subset, ModelKind};
use omg::serve::fault::{FaultPlan, QueryFault};
use omg::serve::{FleetHealth, RestartPolicy, RetryPolicy, ServeConfig, ServeHandle, WorkerHealth};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = cached_tiny_conv(ModelKind::Fast);
    let eval = paper_test_subset(1);

    // The chaos seam: the 8th admitted query panics its worker mid-flight
    // — the same injection the chaos harness and recovery bench use.
    let plan = Arc::new(FaultPlan::new());
    plan.fault_query(7, QueryFault::WorkerPanic);

    let handle = ServeHandle::provision(
        2,
        ServeConfig {
            queue_capacity: 16,
            faults: Some(Arc::clone(&plan)),
            restart: Some(RestartPolicy {
                backoff_initial: Duration::from_millis(5),
                backoff_max: Duration::from_millis(100),
                max_restarts: 16,
                crash_loop_threshold: 3,
                stable_after: Duration::from_secs(1),
            }),
            ..ServeConfig::default()
        },
        "kws",
        model,
        42,
    )?;
    println!(
        "fleet up: {} workers, supervised, health {:?}",
        handle.workers(),
        handle.health()
    );

    // Serve a stream through the kill. `submit_with_retry` re-submits the
    // victim query after its `WorkerPanicked` verdict, so every query in
    // the stream ultimately succeeds.
    let retry = RetryPolicy::default();
    let mut served = 0usize;
    let mut dipped = false;
    for (i, utterance) in eval.utterances.iter().cycle().take(24).enumerate() {
        let t = handle.submit_with_retry(utterance, &retry)?;
        assert!(!t.label.is_empty());
        served += 1;
        let health = handle.health();
        if health != FleetHealth::Healthy && !dipped {
            dipped = true;
            println!(
                "query {i}: worker died — health {health:?}, slots {:?}",
                handle.worker_health()
            );
        }
    }

    // Wait (briefly) for the supervisor to finish restoring capacity.
    let start = Instant::now();
    while handle
        .worker_health()
        .iter()
        .any(|h| *h != WorkerHealth::Live)
    {
        assert!(start.elapsed() < Duration::from_secs(10), "no recovery");
        std::thread::sleep(Duration::from_millis(1));
    }
    println!(
        "recovered: health {:?}, slots {:?}",
        handle.health(),
        handle.worker_health()
    );

    println!("\nstats: {}", handle.stats());

    let drained = handle.drain();
    assert!(drained.is_healthy(), "{:?}", drained.worker_errors);
    println!(
        "drained: {served} queries served, {} restarts, {} retried, \
         {} devices back (full capacity), per-worker {:?}",
        drained.stats.restarts,
        drained.stats.retried,
        drained.devices.len(),
        drained.served_per_worker,
    );
    for (i, device) in drained.devices.iter().enumerate() {
        assert_eq!(device.interpreter_arena_scrubbed(), Some(true));
        println!("worker {i}: arena scrubbed = true");
    }
    Ok(())
}
